/**
 * @file
 * HypervisorFleet implementation: member construction and the
 * round-dispatch worker pool (threading model in fleet.h and
 * docs/ARCHITECTURE.md §7).
 */

#include "vmm/fleet.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

namespace vvax {

HypervisorFleet::HypervisorFleet(FleetConfig config)
    : config_(std::move(config))
{
}

HypervisorFleet::~HypervisorFleet() = default;

void
HypervisorFleet::checkSpawnBudget() const
{
    if (config_.spawnBudget > 0 && size() >= config_.spawnBudget)
        throw std::runtime_error("HypervisorFleet: spawn budget exhausted");
}

int
HypervisorFleet::addVm(const VmConfig &config)
{
    checkSpawnBudget();
    const int index = static_cast<int>(members_.size());
    auto member = std::make_unique<Member>();
    member->index = index;
    member->machine = std::make_unique<RealMachine>(config_.machine);
    member->hv = std::make_unique<Hypervisor>(*member->machine,
                                              config_.hypervisor);
    VmConfig vm_config = config;
    if (vm_config.faultVmId < 0) {
        // Every member's only VM has local id 0; the fleet index is
        // the identity plan `vm=` selectors address.
        vm_config.faultVmId = index;
    }
    member->hv->createVm(vm_config);
    if (config_.supervise) {
        member->supervisor = std::make_unique<VmSupervisor>(
            *member->hv, config_.supervisor);
    }
    members_.push_back(std::move(member));
    return index;
}

int
HypervisorFleet::addForkedMember(const GoldenImage &image)
{
    checkSpawnBudget();
    const int index = static_cast<int>(members_.size());
    auto member = std::make_unique<Member>();
    member->index = index;
    member->image = &image;
    member->forkRestartsLeft = config_.forkRestartBudget;
    // The fork's fault identity is the member index, exactly as addVm
    // assigns it.  No VmSupervisor: the golden image is the baseline,
    // crash recovery re-forks (runSlice).
    GoldenFork fork = image.fork(index);
    member->machine = std::move(fork.machine);
    member->hv = std::move(fork.hv);
    members_.push_back(std::move(member));
    return index;
}

int
HypervisorFleet::addForkedMember(const GoldenImage &image, int n)
{
    const int first = size();
    for (int i = 0; i < n; ++i)
        addForkedMember(image);
    return first;
}

void
HypervisorFleet::killMember(int i)
{
    Member &m = *members_[i];
    m.hv->suspendAll();
    m.hv->vm(0).haltReason = VmHaltReason::VmmPolicy;
    m.killed = true;
    m.done = true;
}

void
HypervisorFleet::loadVmImage(int i, PhysAddr vm_pa,
                             std::span<const Byte> image)
{
    members_[i]->hv->loadVmImage(vm(i), vm_pa, image);
}

void
HypervisorFleet::loadVmDisk(int i, Longword block,
                            std::span<const Byte> data)
{
    members_[i]->hv->loadVmDisk(vm(i), block, data);
}

void
HypervisorFleet::startVm(int i, VirtAddr start_pc)
{
    Member &m = *members_[i];
    m.hv->startVm(vm(i), start_pc);
    if (m.supervisor) {
        // The baseline snapshot is taken now, when the VM is in a
        // state worth restoring to.
        m.supervisor->watch(vm(i));
    }
}

void
HypervisorFleet::setFaultPlan(int i, const FaultPlan *plan)
{
    Member &m = *members_[i];
    if (plan != nullptr) {
        m.plan = std::make_unique<FaultPlan>(*plan);
        m.machine->setFaultPlan(m.plan.get());
    } else {
        m.plan.reset();
        m.machine->setFaultPlan(nullptr);
    }
}

void
HypervisorFleet::postConsoleInput(int i, std::string text,
                                  Longword at_tick)
{
    members_[i]->hv->postConsoleInput(vm(i), std::move(text), at_tick);
}

bool
HypervisorFleet::memberLive(const Member &m) const
{
    Hypervisor &hv = *m.hv;
    for (int v = 0; v < hv.numVms(); ++v) {
        const VirtualMachine &vm = hv.vm(v);
        if (vm.started && !vm.halted())
            return true;
    }
    return false;
}

void
HypervisorFleet::runSlice(Member &m)
{
    const std::uint64_t slice =
        std::min(config_.sliceInstructions, m.budgetLeft);
    if (slice == 0) {
        m.done = true;
        return;
    }
    const std::uint64_t before = m.machine->stats().instructions;
    m.hv->run(slice);
    const std::uint64_t used = m.machine->stats().instructions - before;
    m.budgetLeft -= std::min(used, m.budgetLeft);
    if (m.supervisor) {
        // Supervisor work (snapshot refresh, fault-halt restart)
        // happens at the slice boundary on the thread that owns the
        // member this round - the only thread touching its state.
        m.supervisor->poll();
    }
    if (m.budgetLeft == 0 || !memberLive(m)) {
        // Forked members recover by re-forking from the golden image
        // (same restartable-reason policy as the supervisor).  The
        // decision runs on the worker that owns the member this
        // round, keyed only on the member's own state, so it is
        // identical for every worker count.
        if (m.budgetLeft > 0 && m.image != nullptr && !m.killed &&
            m.forkRestartsLeft > 0 &&
            VmSupervisor::restartable(m.hv->vm(0).haltReason)) {
            refork(m);
            return;
        }
        m.done = true;
    }
}

void
HypervisorFleet::refork(Member &m)
{
    // The dying incarnation's counters must survive into the fleet
    // aggregates; retire them before the machine goes away.  The cow*
    // fields are gauges of a live member's backing, not counters -
    // summing a retired machine's gauges would double-count against
    // the live fleet view, so they retire as zero.
    {
        Stats dying = m.machine->stats();
        dying.cowForkedRam = 0;
        dying.cowKernelBacked = 0;
        dying.cowPagesTouched = 0;
        dying.cowPrivateBytes = 0;
        dying.cowSharedBytes = 0;
        dying.cowDiskBlocksTouched = 0;
        std::lock_guard<std::mutex> lock(mergeMutex_);
        retiredStats_ += dying;
        retiredVmStats_ += m.hv->totalStats();
        forkRestarts_++;
    }
    m.forkRestartsLeft--;
    GoldenFork fork = m.image->fork(m.index);
    m.machine = std::move(fork.machine);
    m.hv = std::move(fork.hv);
    // The member's armed plan survives the re-fork (its firing
    // budgets carry over - the plan describes the member's world, not
    // one incarnation of it).  This also *clears* any environment
    // plan the fresh machine auto-installed: the first incarnation
    // owned those budgets, a re-fork must not re-arm them from zero.
    m.machine->setFaultPlan(m.plan.get());
}

void
HypervisorFleet::publishCowGauges(Member &m) const
{
    Stats &stats = m.machine->stats();
    m.machine->memory().publishCowStats(stats);
    stats.cowDiskBlocksTouched = m.hv->vm(0).disk.blocksTouched();
}

void
HypervisorFleet::mergeAtBarrier()
{
    // Barrier context: every worker is parked, so member machines are
    // safe to read and the cow gauges can be refreshed in place.
    for (auto &m : members_)
        publishCowGauges(*m);
    std::lock_guard<std::mutex> lock(mergeMutex_);
    Stats merged = retiredStats_;
    for (const auto &m : members_)
        merged += m->machine->stats();
    barrierStats_ = merged;
}

void
HypervisorFleet::run(std::uint64_t max_instructions_per_vm)
{
    for (auto &m : members_) {
        m->budgetLeft = max_instructions_per_vm;
        m->done = !memberLive(*m);
    }

    const int workers = std::clamp(config_.workers, 1,
                                   std::max(1, size()));

    auto any_live = [&] {
        for (const auto &m : members_) {
            if (!m->done)
                return true;
        }
        return false;
    };

    if (workers <= 1) {
        // Degenerate pool: same slice granularity and member order as
        // one worker draining the queue, with the same barrier merge.
        while (any_live()) {
            for (auto &m : members_) {
                if (!m->done)
                    runSlice(*m);
            }
            mergeAtBarrier();
        }
        return;
    }

    // Round-dispatch pool: each round, workers claim members off a
    // shared index and run one slice each; the round barrier is where
    // stats merge and the liveness check happen.  Member state is
    // published worker -> coordinator by the mutex (slice writes
    // happen before the pending-count decrement under the lock).
    std::mutex pool_mutex;
    std::condition_variable pool_cv;
    std::atomic<std::size_t> next_member{0};
    std::uint64_t round = 0;
    int pending_workers = 0;
    bool stop = false;

    auto worker_fn = [&] {
        std::uint64_t my_round = 1;
        std::unique_lock<std::mutex> lock(pool_mutex);
        while (true) {
            pool_cv.wait(lock,
                         [&] { return stop || round >= my_round; });
            if (stop)
                return;
            lock.unlock();
            std::size_t i;
            while ((i = next_member.fetch_add(1)) < members_.size()) {
                Member &m = *members_[i];
                if (!m.done)
                    runSlice(m);
            }
            lock.lock();
            if (--pending_workers == 0)
                pool_cv.notify_all();
            my_round++;
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int w = 0; w < workers; ++w)
        threads.emplace_back(worker_fn);

    {
        std::unique_lock<std::mutex> lock(pool_mutex);
        while (any_live()) {
            next_member.store(0);
            pending_workers = workers;
            round++;
            pool_cv.notify_all();
            pool_cv.wait(lock, [&] { return pending_workers == 0; });
            // Barrier point: every worker is parked, the coordinator
            // owns all members.
            mergeAtBarrier();
        }
        stop = true;
        pool_cv.notify_all();
    }
    for (auto &t : threads)
        t.join();
}

Stats
HypervisorFleet::totalMachineStats() const
{
    for (const auto &m : members_)
        publishCowGauges(*m);
    std::lock_guard<std::mutex> lock(mergeMutex_);
    Stats total = retiredStats_;
    for (const auto &m : members_)
        total += m->machine->stats();
    return total;
}

VmStats
HypervisorFleet::totalVmStats() const
{
    std::lock_guard<std::mutex> lock(mergeMutex_);
    VmStats total = retiredVmStats_;
    for (const auto &m : members_)
        total += m->hv->totalStats();
    return total;
}

std::uint64_t
HypervisorFleet::restarts() const
{
    std::uint64_t total = 0;
    for (const auto &m : members_) {
        if (m->supervisor)
            total += m->supervisor->restarts();
    }
    return total;
}

std::uint64_t
HypervisorFleet::forkRestarts() const
{
    std::lock_guard<std::mutex> lock(mergeMutex_);
    return forkRestarts_;
}

Stats
HypervisorFleet::barrierStats() const
{
    std::lock_guard<std::mutex> lock(mergeMutex_);
    return barrierStats_;
}

} // namespace vvax
