/**
 * @file
 * Hypervisor construction, real-memory layout, the real SCB, VM
 * creation, and the scheduler (quantum preemption, WAIT, idle).
 */

#include "vmm/hypervisor.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "fault/fault_plan.h"
#include "vmm/async_disk.h"
#include "vmm/kcall.h"

namespace vvax {

namespace {

constexpr Longword
pagesFor(Longword bytes)
{
    return (bytes + kPageSize - 1) / kPageSize;
}

} // namespace

// ---------------------------------------------------------------------------
// MMIO-mode virtual disk (the costly baseline of Section 4.4.3): the
// VM's driver touches these registers with ordinary instructions, and
// every touch costs a modelled trap into the VMM.
// ---------------------------------------------------------------------------

class Hypervisor::VmMmioDisk : public MmioHandler
{
  public:
    VmMmioDisk(Hypervisor &hv, VirtualMachine &vm) : hv_(hv), vm_(vm) {}

    Longword
    mmioRead(PhysAddr offset, int size) override
    {
        (void)size;
        account();
        switch (offset & ~3u) {
          case 0: return vm_.mmioCsr | DiskDevice::kCsrReady;
          case 4: return vm_.mmioBlock;
          case 8: return vm_.mmioCount;
          case 12: return vm_.mmioAddr;
          default: return 0;
        }
    }

    void
    mmioWrite(PhysAddr offset, Longword value, int size) override
    {
        (void)size;
        account();
        switch (offset & ~3u) {
          case 0: {
            vm_.mmioCsr = value & (DiskDevice::kCsrIe |
                                   DiskDevice::kCsrFuncWrite);
            if (value & DiskDevice::kCsrGo) {
                if (vm_.lastDiskOpFailed) {
                    vm_.stats.diskRetries++;
                    hv_.machine_.stats().diskRetries++;
                }
                const bool write =
                    (vm_.mmioCsr & DiskDevice::kCsrFuncWrite) != 0;
                const bool ok =
                    hv_.vmDiskTransfer(vm_, write, vm_.mmioBlock,
                                       vm_.mmioCount, vm_.mmioAddr);
                // A failed transfer must be observable: ERROR stays
                // up in the CSR until the next GO.
                if (!ok)
                    vm_.mmioCsr |= DiskDevice::kCsrError;
                vm_.lastDiskOpFailed = !ok;
                if (vm_.mmioCsr & DiskDevice::kCsrIe) {
                    vm_.postInterrupt(
                        kIplDisk,
                        static_cast<Word>(ScbVector::DeviceBase));
                }
            }
            break;
          }
          case 4: vm_.mmioBlock = value; break;
          case 8: vm_.mmioCount = value; break;
          case 12: vm_.mmioAddr = value; break;
          default: break;
        }
    }

  private:
    void
    account()
    {
        vm_.stats.mmioEmulations++;
        vm_.stats.mmioExits++;
        hv_.charge(CycleCategory::VmmIo,
                   hv_.machine_.costModel().vmmMmioReference);
    }

    Hypervisor &hv_;
    VirtualMachine &vm_;
};

// ---------------------------------------------------------------------------
// Construction and layout
// ---------------------------------------------------------------------------

Hypervisor::Hypervisor(RealMachine &machine, HypervisorConfig config)
    : machine_(machine), config_(config), cpu_(machine.cpu()),
      mmu_(machine.mmu()), mem_(machine.memory())
{
    if (cpu_.level() != MicrocodeLevel::Modified) {
        throw std::invalid_argument(
            "the VMM requires the modified (virtualizable) VAX "
            "microcode");
    }

    realScbPa_ = allocPages(1);
    buildRealScb();
    cpu_.setScbb(realScbPa_);

    // The idle page: a one-instruction loop (BRB .) the machine parks
    // on when no VM is runnable.
    idlePagePa_ = allocPages(1);
    mem_.write8(idlePagePa_, 0x11); // BRB
    mem_.write8(idlePagePa_ + 1, 0xFE); // -2

    // Start the real interval timer; it drives scheduling quanta and
    // the VMs' virtual clocks.
    cpu_.writeIprInternal(Ipr::NICR,
                          static_cast<Longword>(-static_cast<std::int32_t>(
                              config_.tickCycles)));
    cpu_.writeIprInternal(Ipr::ICCS, iccs::kTransfer | iccs::kRun |
                                         iccs::kInterruptEnable);

    // Park idle until a VM starts.
    Psl idle_psl;
    idle_psl.setCurrentMode(AccessMode::Kernel);
    idle_psl.setIpl(0);
    cpu_.setPc(idlePagePa_);
    cpu_.psl() = idle_psl;
    cpu_.enterIdleWait();
}

Hypervisor::~Hypervisor()
{
    // Apply pending async completions before the engine joins: the
    // disk and memory images inspected after teardown must be final.
    // Bounded, so a wedged engine cannot wedge destruction; a batch
    // that times out stays pending with its staging alive, and the
    // explicit engine reset below joins the worker — which finishes
    // its copies into that still-alive staging/disk storage — before
    // the VMs (and their disks) are destroyed.
    for (auto &vm : vms_)
        drainAsyncDisk(*vm, /*bounded=*/true);
    asyncEngine_.reset();
}

PhysAddr
Hypervisor::allocPages(Longword pages)
{
    const Longword start = allocNextPage_;
    if ((start + pages) * kPageSize > mem_.ramSize())
        throw std::runtime_error("VMM: out of real memory");
    allocNextPage_ += pages;
    return start * kPageSize;
}

void
Hypervisor::buildRealScb()
{
    // Every vector dispatches to a VMM handler ("service in WCS").
    // Unexpected vectors get a handler that halts the machine - a
    // dispatch there means a VMM bug, never VM behaviour.
    for (Word v = 0; v < kScbSize; v += 4)
        mem_.write32(realScbPa_ + v, Cpu::hostHookScbEntry(v / 4));

    auto hook = [this](Word vector, Cpu::HostHook fn) {
        cpu_.setHostHook(vector / 4, std::move(fn));
    };

    for (Word v = 0; v < kScbSize; v += 4) {
        hook(v, [this](const HostFrame &) {
            cpu_.externalHalt(HaltReason::ExternalRequest);
        });
    }

    hook(static_cast<Word>(ScbVector::MachineCheck),
         [this](const HostFrame &f) { hookMachineCheck(f); });
    hook(static_cast<Word>(ScbVector::KernelStackNotValid),
         [this](const HostFrame &) {
             if (currentVm_ >= 0)
                 haltVm(*vms_[currentVm_],
                        VmHaltReason::KernelStackNotValid);
             else
                 cpu_.externalHalt(HaltReason::KernelStackNotValid);
         });

    // Faults forwarded to the VM's own operating system.
    for (ScbVector v : {ScbVector::ReservedInstruction,
                        ScbVector::CustomerReserved,
                        ScbVector::ReservedOperand,
                        ScbVector::ReservedAddressingMode,
                        ScbVector::TracePending, ScbVector::Breakpoint,
                        ScbVector::Arithmetic}) {
        hook(static_cast<Word>(v),
             [this](const HostFrame &f) { hookForwardFault(f); });
    }

    hook(static_cast<Word>(ScbVector::AccessViolation),
         [this](const HostFrame &f) {
             hookMemoryFault(f, ScbVector::AccessViolation);
         });
    hook(static_cast<Word>(ScbVector::TranslationNotValid),
         [this](const HostFrame &f) {
             hookMemoryFault(f, ScbVector::TranslationNotValid);
         });
    hook(static_cast<Word>(ScbVector::ModifyFault),
         [this](const HostFrame &f) { hookModifyFault(f); });
    hook(static_cast<Word>(ScbVector::VmEmulation),
         [this](const HostFrame &f) { hookVmEmulation(f); });
    hook(static_cast<Word>(ScbVector::IntervalTimer),
         [this](const HostFrame &f) { hookTimer(f); });
}

VirtualMachine &
Hypervisor::createVm(const VmConfig &config)
{
    const Longword mem_pages = pagesFor(config.memBytes);
    const Longword dev_pages = config.ioMode == VmIoMode::Mmio ? 1 : 0;
    if (mem_pages + dev_pages > config_.p0MaxPtes) {
        throw std::invalid_argument(
            "VM memory exceeds the VMM's P0 table limit");
    }

    const int id = static_cast<int>(vms_.size());
    auto vm = std::make_unique<VirtualMachine>(id, config);
    vm->memPages = mem_pages;
    vm->basePfn = allocPages(mem_pages) >> kPageShift;

    buildVmTables(*vm);

    if (config.ioMode == VmIoMode::Mmio) {
        auto handler = std::make_unique<VmMmioDisk>(*this, *vm);
        // One register page per VM, above RAM, page-aligned so a
        // shadow PTE can name its frame.
        const PhysAddr base = 0x3F000000 + static_cast<PhysAddr>(id) *
                                               kPageSize;
        mem_.addMmioWindow(base, kPageSize, handler.get());
        vm->mmioWindowPfn = base >> kPageShift;
        mmioDisks_.push_back(std::move(handler));
    }

    vms_.push_back(std::move(vm));
    return *vms_.back();
}

void
Hypervisor::buildVmTables(VirtualMachine &vm)
{
    const Longword slot_p0_pages = pagesFor(config_.p0MaxPtes * 4);
    const Longword slot_p1_pages = pagesFor(config_.p1MaxPtes * 4);
    const Longword slot_span = slot_p0_pages + slot_p1_pages;
    const int total_slots = config_.shadowSlotsPerVm + 1;

    const Longword spt_entries = config_.vmSMaxPages +
                                 total_slots * slot_span + 1;
    sptEntries_ = spt_entries;
    const Longword spt_pages = pagesFor(spt_entries * 4);
    vm.shadowSptPa = allocPages(spt_pages);
    vm.shadowSlr = spt_entries;

    // VM S-space shadow region: all null PTEs (fill on demand), and
    // a fresh system-half TLB context to translate under.
    fillNullPtes(vm.shadowSptPa, config_.vmSMaxPages);
    vm.tlbSysCtx = mmu_.newTlbContext();

    // VMM region: map each shadow slot's table pages (kernel-only).
    Longword vpn = config_.vmSMaxPages;
    vm.slots.resize(total_slots);
    for (int s = 0; s < total_slots; ++s) {
        ShadowSlot &slot = vm.slots[s];
        slot.p0TablePa = allocPages(slot_p0_pages);
        slot.p1TablePa = allocPages(slot_p1_pages);
        slot.p0TableVa = kSystemBase + vpn * kPageSize;
        for (Longword p = 0; p < slot_p0_pages; ++p, ++vpn) {
            const Pte pte = Pte::make(
                true, Protection::KW, true,
                (slot.p0TablePa >> kPageShift) + p);
            mem_.write32(vm.shadowSptPa + 4 * vpn, pte.raw());
        }
        slot.p1TableVa = kSystemBase + vpn * kPageSize;
        for (Longword p = 0; p < slot_p1_pages; ++p, ++vpn) {
            const Pte pte = Pte::make(
                true, Protection::KW, true,
                (slot.p1TablePa >> kPageShift) + p);
            mem_.write32(vm.shadowSptPa + 4 * vpn, pte.raw());
        }
        flushShadowSlot(vm, s);
    }
    vm.physModeSlot = total_slots - 1;
    vm.activeSlot = vm.physModeSlot;

    // The shared idle page, kernel-read-only, at the top of the map.
    idleVa_ = kSystemBase + vpn * kPageSize;
    const Pte idle_pte =
        Pte::make(true, Protection::KR, false,
                  idlePagePa_ >> kPageShift);
    mem_.write32(vm.shadowSptPa + 4 * vpn, idle_pte.raw());
}

void
Hypervisor::loadVmImage(VirtualMachine &vm, PhysAddr vm_pa,
                        std::span<const Byte> image)
{
    if (vm_pa + image.size() > vm.memPages * kPageSize)
        throw std::out_of_range("image beyond VM memory");
    mem_.writeBlock(vm.vmPhysToReal(vm_pa), image);
}

void
Hypervisor::loadVmDisk(VirtualMachine &vm, Longword block,
                       std::span<const Byte> data)
{
    const std::size_t offset = static_cast<std::size_t>(block) * 512;
    if (offset + data.size() > vm.disk.size())
        throw std::out_of_range("data beyond VM disk");
    std::memcpy(vm.disk.data() + offset, data.data(), data.size());
    vm.disk.markWritten(block, (data.size() + 511) / 512);
}

void
Hypervisor::startVm(VirtualMachine &vm, VirtAddr start_pc)
{
    vm.started = true;
    vm.haltReason = VmHaltReason::None;
    vm.vMapen = false;
    Psl vmpsl;
    vmpsl.setCurrentMode(AccessMode::Kernel);
    vmpsl.setPreviousMode(AccessMode::Kernel);
    vmpsl.setIpl(31); // boot state: interrupts masked
    vm.vmpsl = vmpsl.raw();
    vm.vSp[static_cast<int>(AccessMode::Kernel)] =
        vm.memPages * kPageSize; // provisional stack at top of memory
    vm.savedPc = start_pc;
    vm.savedRealPsl = realPslForVm(vm, 0).raw();
}

void
Hypervisor::injectConsoleInput(VirtualMachine &vm, std::string_view text)
{
    vm.console.injectInput(text);
    if (vm.consoleRxIe) {
        vm.postInterrupt(kIplConsole,
                         static_cast<Word>(ScbVector::ConsoleReceive));
        if (currentVm_ == vm.id())
            updatePendingIplHint(vm);
    }
}

void
Hypervisor::postConsoleInput(VirtualMachine &vm, std::string text,
                             Longword at_tick)
{
    {
        std::lock_guard<std::mutex> lock(mailboxMutex_);
        mailbox_.push_back(MailboxEntry{vm.id(), /*isInterrupt=*/false,
                                        std::move(text), 0, 0, at_tick});
    }
    mailboxArmed_.store(true, std::memory_order_release);
}

void
Hypervisor::postInterruptFromHost(VirtualMachine &vm, Byte ipl,
                                  Word vector, Longword at_tick)
{
    {
        std::lock_guard<std::mutex> lock(mailboxMutex_);
        mailbox_.push_back(MailboxEntry{vm.id(), /*isInterrupt=*/true,
                                        std::string(), ipl, vector,
                                        at_tick});
    }
    mailboxArmed_.store(true, std::memory_order_release);
}

void
Hypervisor::drainMailbox()
{
    std::lock_guard<std::mutex> lock(mailboxMutex_);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < mailbox_.size(); ++i) {
        MailboxEntry &e = mailbox_[i];
        if (e.atTick > tickCount_) {
            // Not due yet: delivery keys on the virtual tick so a
            // message posted against tick T lands at the same guest
            // instruction on every worker count.
            if (kept != i)
                mailbox_[kept] = std::move(e);
            kept++;
            continue;
        }
        VirtualMachine &vm = *vms_[e.vmIndex];
        if (!e.delayed) {
            // Mailbox-delay fault (FaultClass::MailboxDelay): a due
            // entry is held 1..kMaxMailboxDelayTicks extra virtual
            // ticks.  Ordinal is the per-VM delivery counter, bumped
            // exactly once per entry at its first due tick, so the
            // decision (and the reschedule) is a pure function of the
            // VM's own architectural history — identical on every
            // worker count.  Delivery still lands on a deterministic
            // virtual tick; an entry is delayed at most once.
            const std::uint64_t ordinal = vm.stats.mailboxDeliveries++;
            if (FaultPlan *plan = machine_.faultPlan()) {
                if (plan->shouldInject(FaultClass::MailboxDelay,
                                       vm.faultId(), ordinal)) {
                    machine_.stats().faultsInjected[static_cast<int>(
                        FaultClass::MailboxDelay)]++;
                    e.delayed = true;
                    e.atTick = tickCount_ +
                               static_cast<Longword>(plan->delayTicks(
                                   FaultClass::MailboxDelay, vm.faultId(),
                                   ordinal, kMaxMailboxDelayTicks));
                    if (kept != i)
                        mailbox_[kept] = std::move(e);
                    kept++;
                    continue;
                }
            }
        }
        if (e.isInterrupt) {
            vm.postInterrupt(e.ipl, e.vector);
            if (currentVm_ == vm.id())
                updatePendingIplHint(vm);
        } else {
            injectConsoleInput(vm, e.text);
        }
    }
    mailbox_.resize(kept);
    if (mailbox_.empty())
        mailboxArmed_.store(false, std::memory_order_release);
}

RunState
Hypervisor::run(std::uint64_t max_instructions)
{
    bool any = false;
    for (auto &vm : vms_)
        any = any || (vm->started && !vm->halted());
    if (!any)
        return cpu_.runState();
    // A previous run may have stopped the machine because every VM
    // had halted; if the operator console restarted one, recover.
    if (cpu_.runState() == RunState::Halted &&
        cpu_.haltReason() == HaltReason::ExternalRequest) {
        cpu_.clearHalt();
        idle_ = true;
    }
    if (idle_)
        scheduleNext();
    return machine_.run(max_instructions);
}

VmStats
Hypervisor::totalStats() const
{
    // The merge is generated from VVAX_VM_STATS_FIELDS (vm_state.h),
    // so a newly added counter is aggregated the day it is declared.
    VmStats total;
    for (const auto &vm : vms_)
        total += vm->stats;
    return total;
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

bool
Hypervisor::vmRunnable(const VirtualMachine &vm) const
{
    if (!vm.started || vm.halted())
        return false;
    if (!vm.waiting)
        return true;
    // WAIT wakes on a deliverable virtual interrupt or on timeout
    // (paper footnote: "WAIT times out after some seconds").  A due
    // async disk completion is a wake event too: loadAndRun applies
    // it and the completion interrupt gets delivered on entry.
    if (asyncDiskDue(vm))
        return true;
    if (vm.highestPendingIpl() > Psl(vm.vmpsl).ipl())
        return true;
    return tickCount_ >= vm.waitDeadline;
}

void
Hypervisor::scheduleNext()
{
    const int n = numVms();
    for (int i = 1; i <= n; ++i) {
        const int index = (currentVm_ + i + n) % n;
        VirtualMachine &vm = *vms_[index];
        if (vmRunnable(vm)) {
            vm.waiting = false;
            loadAndRun(vm);
            return;
        }
    }

    // Nothing runnable.  If every started VM has halted, stop the
    // machine; otherwise idle until the timer wakes something.
    bool all_halted = true;
    for (auto &vm : vms_) {
        if (vm->started && !vm->halted())
            all_halted = false;
    }
    if (all_halted && !vms_.empty()) {
        cpu_.externalHalt(HaltReason::ExternalRequest);
        return;
    }
    enterIdle();
}

void
Hypervisor::enterIdle()
{
    idle_ = true;
    currentVm_ = -1;
    Psl idle_psl;
    idle_psl.setCurrentMode(AccessMode::Kernel);
    idle_psl.setIpl(0);
    cpu_.resumeWith(mapActive_ ? idleVa_ : idlePagePa_, idle_psl);
    cpu_.enterIdleWait();
}

void
Hypervisor::loadAndRun(VirtualMachine &vm)
{
    currentVm_ = vm.id();
    idle_ = false;
    quantumStartTick_ = tickCount_;
    mapActive_ = true;

    setRealMapForVm(vm);

    for (int i = 0; i < 14; ++i)
        cpu_.setReg(i, vm.savedRegs[i]);
    cpu_.setVmpsl(vm.vmpsl);
    installStackPointers(vm);
    updatePendingIplHint(vm);

    if (vm.uptimeMailbox != 0) {
        // Section 5: the VMM maintains system up time and stores it
        // into the VMOS's memory.
        vmWritePhys32(vm, vm.uptimeMailbox,
                      static_cast<Longword>(tickCount_ *
                                            config_.tickCycles));
    }

    // A completion that came due while the VM was off-processor is
    // applied on entry, before the first guest instruction runs.
    if (asyncDiskDue(vm))
        applyAsyncDiskCompletion(vm);

    vm.stats.vmEntries++;
    continueVm(vm, vm.savedPc, Psl(vm.savedRealPsl));
}

void
Hypervisor::suspendAll()
{
    if (currentVm_ >= 0 && cpu_.runState() != RunState::Halted &&
        cpu_.psl().vm()) {
        suspendCurrent(cpu_.pc(), cpu_.psl());
        enterIdle();
    }
    // Inspection/snapshot barrier: every VM's disk and memory must be
    // final, so pending async batches complete now.
    for (auto &vm : vms_)
        drainAsyncDisk(*vm);
}

void
Hypervisor::stallAsyncDiskForTesting(std::chrono::milliseconds ms)
{
    if (!asyncEngine_)
        asyncEngine_ = std::make_unique<AsyncDiskEngine>();
    asyncEngine_->stallForTesting(ms);
}

void
Hypervisor::suspendCurrent(VirtAddr pc, Psl real_psl)
{
    VirtualMachine &vm = *vms_[currentVm_];
    // A scheduling exit is a coalescing flush point: the VM's output
    // must be on the device before another VM (or the operator) can
    // observe the console.
    flushConsoleOutput(vm);
    syncStackPointersFromCpu(vm);
    vm.vmpsl = cpu_.vmpsl();
    for (int i = 0; i < 14; ++i)
        vm.savedRegs[i] = cpu_.reg(i);
    vm.savedPc = pc;
    Psl saved = real_psl;
    saved.setVm(true);
    vm.savedRealPsl = saved.raw();
    currentVm_ = -1;
}

void
Hypervisor::haltVm(VirtualMachine &vm, VmHaltReason reason)
{
    // Post-mortem state should be final, but a halt must never hang
    // on a wedged engine: bounded drain, and if it times out the
    // batch simply stays pending (a later architectural sync point or
    // the destructor's engine join finishes the byte movement).
    drainAsyncDisk(vm, /*bounded=*/true);
    flushConsoleOutput(vm);
    vm.haltReason = reason;
    if (currentVm_ == vm.id()) {
        // Snapshot the final state for post-mortem inspection.
        vm.vmpsl = cpu_.vmpsl();
        for (int i = 0; i < 14; ++i)
            vm.savedRegs[i] = cpu_.reg(i);
        currentVm_ = -1;
    }
    scheduleNext();
}

void
Hypervisor::continueVm(VirtualMachine &vm, VirtAddr pc, Psl real_psl)
{
    if (vm.halted()) {
        scheduleNext();
        return;
    }
    if (deliverPendingInterrupt(vm, pc, real_psl))
        return;
    // Every VMM exit rebuilds VMPSL and REIs back into the VM.
    charge(CycleCategory::VmmEmulation, machine_.costModel().vmmResume);
    real_psl.setVm(true);
    updatePendingIplHint(vm);
    cpu_.resumeWith(pc, real_psl);
}

void
Hypervisor::hookTimer(const HostFrame &frame)
{
    tickCount_++;
    // Acknowledge the real clock.
    cpu_.writeIprInternal(Ipr::ICCS, iccs::kInterrupt | iccs::kRun |
                                         iccs::kInterruptEnable);

    // Cross-thread mailbox: one relaxed-ish atomic load per tick when
    // idle, a locked drain only when another thread posted something.
    if (mailboxArmed_.load(std::memory_order_acquire))
        drainMailbox();

    if (frame.savedPsl.vm() && currentVm_ >= 0) {
        VirtualMachine &vm = *vms_[currentVm_];
        // Virtual timer interrupts are delivered only while the VM is
        // actually running (paper Section 5).
        accrueVirtualClock(vm, config_.tickCycles);

        // Async disk completion lands at its virtual-tick deadline
        // while the VM is resident, so the charge and the interrupt
        // stay inside the owning VM's quantum.
        if (asyncDiskDue(vm))
            applyAsyncDiskCompletion(vm);

        // Fault injection against the resident VM, keyed on the tick
        // ordinal (architectural: both execution paths tick at the
        // same cycle counts, so the lockstep envelope holds).
        FaultPlan *plan = machine_.faultPlan();
        if (plan != nullptr) {
            if (plan->shouldInject(FaultClass::SpuriousInterrupt,
                                   vm.faultId(), tickCount_)) {
                machine_.stats().faultsInjected[static_cast<int>(
                    FaultClass::SpuriousInterrupt)]++;
                charge(CycleCategory::VmmInterrupt,
                       machine_.costModel().vmmDeliverInterrupt);
                vm.postInterrupt(kcallabi::kDiskIpl,
                                 kcallabi::kDiskVector);
                updatePendingIplHint(vm);
            }
            if (plan->shouldInject(FaultClass::Ecc, vm.faultId(),
                                   tickCount_)) {
                // A physical-memory ECC event while the VM is
                // resident: reflect a machine check into the guest
                // through its SCB vector 0x04 (paper Section 6)
                // instead of taking the event in the host.
                machine_.stats().faultsInjected[static_cast<int>(
                    FaultClass::Ecc)]++;
                machine_.stats().machineChecksDelivered++;
                vm.stats.machineChecks++;
                charge(CycleCategory::VmmEmulation,
                       machine_.costModel().vmmMachineCheck);
                Psl vm_psl(cpu_.vmpsl());
                vm_psl.setRaw((vm_psl.raw() &
                               ~(Psl::kPswMask | Psl::kVm)) |
                              (frame.savedPsl.raw() & Psl::kPswMask));
                const Longword params[3] = {
                    kMcheckParamBytes, kMcheckCodeEcc,
                    plan->eccAddress(vm.faultId(), tickCount_,
                                     vm.memPages * kPageSize)};
                // Machine checks are unmaskable: deliver at IPL 31.
                // On a bad guest SCB/stack this halts the VM -
                // contained either way.
                reflectToVm(vm, static_cast<Word>(ScbVector::MachineCheck),
                            params, 3, frame.pc, vm_psl,
                            /*as_interrupt=*/true, 31);
                return;
            }
        }

        // No-forward-progress watchdog: a guest pinned at high IPL
        // with nothing deliverable cannot be making progress that
        // depends on the VMM; after the configured quanta it is
        // halted by policy.
        if (config_.watchdog) {
            const Psl vm_psl_now(cpu_.vmpsl());
            if (vm_psl_now.ipl() >= config_.watchdogIplThreshold &&
                vm.highestPendingIpl() <= vm_psl_now.ipl()) {
                vm.watchdogTicks++;
                if (vm.watchdogTicks >= config_.watchdogQuanta *
                                            config_.ticksPerQuantum) {
                    vm.stats.watchdogHalts++;
                    haltVm(vm, VmHaltReason::VmmPolicy);
                    return;
                }
            } else {
                vm.watchdogTicks = 0;
            }
        }

        if (tickCount_ - quantumStartTick_ >=
            config_.ticksPerQuantum) {
            suspendCurrent(frame.pc, frame.savedPsl);
            scheduleNext();
            return;
        }
        continueVm(vm, frame.pc, frame.savedPsl);
        return;
    }

    // Timer tick while idle: see whether anything woke up.
    scheduleNext();
}

} // namespace vvax
