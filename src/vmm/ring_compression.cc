#include "vmm/ring_compression.h"

namespace vvax {

Protection
compressProtection(Protection vm_prot)
{
    switch (vm_prot) {
      case Protection::KW:
        return Protection::EW; // kernel r/w -> executive r/w
      case Protection::KR:
        return Protection::ER; // kernel read -> executive read
      case Protection::ERKW:
        // Executive read, kernel write: the compressed writer must be
        // executive, which already implies executive read.
        return Protection::EW;
      case Protection::SRKW:
        return Protection::SREW; // supervisor read, kernel write
      case Protection::URKW:
        return Protection::UREW; // user read, kernel write
      default:
        return vm_prot;
    }
}

} // namespace vvax
