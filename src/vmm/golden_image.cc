#include "vmm/golden_image.h"

#include <stdexcept>

#include "fault/fault_plan.h"

namespace vvax {

GoldenImage
GoldenImage::seal(Hypervisor &hv, VirtualMachine &vm)
{
    if (hv.numVms() != 1)
        throw std::invalid_argument(
            "GoldenImage::seal: the sealed VM must be its hypervisor's "
            "only VM (whole-machine RAM is part of the image)");

    // snapshotVm suspends the VM and drains async I/O, then captures
    // the register/device state we keep.  Its memory/disk payload
    // vectors are redundant with the sealed regions below; drop them.
    VmSnapshot snap = snapshotVm(hv, vm);

    GoldenImage image;
    image.machineConfig_ = hv.machine().config();
    image.hvConfig_ = hv.config();
    image.basePfn_ = vm.basePfn;
    image.memPages_ = vm.memPages;
    // Host-resource fault (FaultClass::HostAlloc): a plan rule firing
    // at the seal (one decision per seal, ordinal 0) fails the memfd
    // path for both regions, forcing the heap fallback the forks then
    // see as a non-kernel-backed image.  Architecturally invisible —
    // the fallback is bit-identical — but counted, so sweeps can
    // assert the fallback really ran.
    FaultPlan *plan = hv.machine().faultPlan();
    const bool host_fault =
        plan != nullptr &&
        plan->shouldInject(FaultClass::HostAlloc, vm.faultId(), 0);
    if (host_fault) {
        hv.machine().stats().faultsInjected[static_cast<int>(
            FaultClass::HostAlloc)]++;
        setSimulatedHostAllocFailures(2);
    }
    image.ram_ = SealedRegion::seal(hv.machine().memory().ram());
    image.disk_ = SealedRegion::seal(vm.disk);
    if (host_fault)
        setSimulatedHostAllocFailures(0);
    snap.memory.clear();
    snap.memory.shrink_to_fit();
    snap.disk.clear();
    snap.disk.shrink_to_fit();
    image.state_ = std::move(snap);
    return image;
}

GoldenFork
GoldenImage::fork(int fault_vm_id, CowBacking backing) const
{
    if (!sealed())
        throw std::logic_error("GoldenImage::fork: image not sealed");

    GoldenFork f;
    f.machine = std::make_unique<RealMachine>(machineConfig_, ram_, backing);
    f.hv = std::make_unique<Hypervisor>(*f.machine, hvConfig_);

    VmConfig vc = state_.config;
    if (fault_vm_id >= 0)
        vc.faultVmId = fault_vm_id;
    VirtualMachine &vm = f.hv->createVm(vc);

    // Reconstruction must land the VM on the same real pages the
    // sealed machine used, or the shared image bytes would be under
    // the wrong addresses.  allocPages is deterministic given the
    // configs, so a mismatch means the image is stale.
    if (vm.basePfn != basePfn_ || vm.memPages != memPages_)
        throw std::logic_error(
            "GoldenImage::fork: reconstructed VM layout does not match "
            "the sealed image");

    vm.disk.adoptCow(disk_, backing);
    applyVmSnapshotState(vm, state_);
    // Replay the console transcript, as restoreVm does: each fork's
    // console starts as a continuation of the sealed VM's output.
    for (char c : state_.consoleOutput)
        vm.console.writeIpr(Ipr::TXDB, static_cast<Byte>(c));

    // Shadow tables need no treatment: a fresh VM is already all null
    // PTEs, and the first touch of every page refills from the (CoW-
    // shared) VM page tables.  Page generations and VmStats are fresh
    // zeros - the fork's SMC detection, CoW accounting and fault-plan
    // ordinals all start at the fork point.
    f.vm = &vm;
    return f;
}

} // namespace vvax
