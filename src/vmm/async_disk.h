/**
 * @file
 * Host-side asynchronous copy engine for the virtual disk
 * (docs/ARCHITECTURE.md §7).
 *
 * kDiskBatch with HypervisorConfig::asyncDiskIo resolves everything
 * architectural at submit time on the thread that owns the VM - ring
 * validation, fault decisions, per-descriptor statuses, the virtual
 * tick the completion lands on - and hands the engine a list of plain
 * host memcpys between the VM's disk image and a staging buffer.  The
 * worker thread therefore never touches guest memory, the MMU, or any
 * statistic: wall-clock overlap with guest execution can reorder only
 * byte movement that nothing observes until the owning thread applies
 * the completion, which is how an asynchronous run stays bit-identical
 * with a synchronous one in architectural terms.
 *
 * Jobs complete in submission order, so a ticket is just a sequence
 * number and wait() is a monotonic counter check.
 */

#ifndef VVAX_VMM_ASYNC_DISK_H
#define VVAX_VMM_ASYNC_DISK_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "arch/types.h"

namespace vvax {

class AsyncDiskEngine
{
  public:
    /** One host copy; src/dst stay valid until the job completes. */
    struct Copy
    {
        Byte *dst;
        const Byte *src;
        std::size_t bytes;
    };

    AsyncDiskEngine() = default;
    ~AsyncDiskEngine();

    AsyncDiskEngine(const AsyncDiskEngine &) = delete;
    AsyncDiskEngine &operator=(const AsyncDiskEngine &) = delete;

    /**
     * Queue a job; returns its ticket (monotonic from 1).  The worker
     * thread starts on first use, so an engine owned by a hypervisor
     * that never enables asyncDiskIo costs nothing.
     */
    std::uint64_t submit(std::vector<Copy> copies);

    /** Block until the job holding @p ticket has finished its copies. */
    void wait(std::uint64_t ticket);

    /**
     * Bounded wait: true when the job finished within @p timeout,
     * false when it is still in flight.  Shutdown paths (haltVm,
     * hypervisor destruction) use this instead of wait() so a wedged
     * or deliberately stalled engine cannot wedge the round barrier —
     * the timed-out batch stays pending and its staging stays alive
     * until the engine is joined.
     */
    bool waitFor(std::uint64_t ticket, std::chrono::milliseconds timeout);

    /** True once the job holding @p ticket has finished (non-blocking). */
    bool done(std::uint64_t ticket);

    /**
     * Test hook: make the worker sleep @p ms before executing each
     * job, simulating a wedged host I/O path so the bounded-drain
     * guarantees can be exercised.  0 restores normal behaviour.
     */
    void stallForTesting(std::chrono::milliseconds ms);

  private:
    void workerLoop();

    std::atomic<int> stallMs_{0}; //!< test-only worker delay per job

    std::mutex mutex_;
    std::condition_variable workCv_; //!< signals the worker: new job/stop
    std::condition_variable doneCv_; //!< signals waiters: job finished
    std::deque<std::pair<std::uint64_t, std::vector<Copy>>> queue_;
    std::uint64_t nextTicket_ = 1;
    std::uint64_t completed_ = 0;
    bool stop_ = false;
    std::thread worker_; //!< started lazily by the first submit()
};

} // namespace vvax

#endif // VVAX_VMM_ASYNC_DISK_H
