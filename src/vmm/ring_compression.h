/**
 * @file
 * Ring compression (paper Section 4.1/4.3.1, Figure 3).
 *
 * Execution compression maps the four virtual rings onto the three
 * real rings available to a VM (real kernel mode is reserved to the
 * VMM): virtual user/supervisor/executive map to their real
 * counterparts and virtual kernel maps to real executive.
 *
 * Memory compression rewrites a VM page protection code so that any
 * access confined to kernel mode is extended to executive mode; this
 * lets VM-kernel code (running in real executive mode) reach its
 * kernel-protected pages.  The side effect - VM-executive code can
 * also reach those pages - is the deliberate "blurred boundary" the
 * paper analyses in Section 7.1.
 */

#ifndef VVAX_VMM_RING_COMPRESSION_H
#define VVAX_VMM_RING_COMPRESSION_H

#include "arch/protection.h"
#include "arch/types.h"

namespace vvax {

/** Map a virtual machine access mode to the real mode it runs in. */
constexpr AccessMode
compressMode(AccessMode vm_mode)
{
    return vm_mode == AccessMode::Kernel ? AccessMode::Executive
                                         : vm_mode;
}

/**
 * Map a VM page protection code to the compressed code stored in the
 * shadow PTE.  Kernel-only access is widened to executive access;
 * all other codes are unchanged.
 */
Protection compressProtection(Protection vm_prot);

} // namespace vvax

#endif // VVAX_VMM_RING_COMPRESSION_H
