#include "vmm/vm_monitor.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <optional>
#include <sstream>
#include <vector>

namespace vvax {

namespace {

std::vector<std::string>
tokens(std::string_view line)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                out.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
        }
    }
    if (!current.empty())
        out.push_back(current);
    return out;
}

std::optional<Longword>
hexValue(const std::string &t)
{
    Longword v = 0;
    if (t.empty())
        return std::nullopt;
    for (char c : t) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'A' && c <= 'F')
            digit = 10 + (c - 'A');
        else
            return std::nullopt;
        v = (v << 4) | static_cast<Longword>(digit);
    }
    return v;
}

std::string
hex(Longword v)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08X", v);
    return buf;
}

} // namespace

std::string
VmMonitor::command(std::string_view line)
{
    const auto t = tokens(line);
    if (t.empty())
        return "?";

    const std::string &cmd = t[0];
    PhysicalMemory &mem = hv_.machine().memory();

    if ((cmd == "EXAMINE" || cmd == "E") && t.size() == 2) {
        const auto addr = hexValue(t[1]);
        if (!addr || (*addr >> kPageShift) >= vm_.memPages)
            return "?ADDR";
        return hex(*addr) + " / " +
               hex(mem.read32(vm_.vmPhysToReal(*addr)));
    }
    if ((cmd == "DEPOSIT" || cmd == "D") && t.size() == 3) {
        const auto addr = hexValue(t[1]);
        const auto value = hexValue(t[2]);
        if (!addr || !value || (*addr >> kPageShift) >= vm_.memPages)
            return "?ADDR";
        mem.write32(vm_.vmPhysToReal(*addr), *value);
        return hex(*addr) + " <- " + hex(*value);
    }
    if ((cmd == "START" || cmd == "S") && t.size() == 2) {
        const auto addr = hexValue(t[1]);
        if (!addr)
            return "?ADDR";
        hv_.startVm(vm_, *addr);
        return "STARTED AT " + hex(*addr);
    }
    if (cmd == "HALT" || cmd == "H") {
        vm_.haltReason = VmHaltReason::VmmPolicy;
        return "HALTED";
    }
    if (cmd == "CONTINUE" || cmd == "C") {
        if (!vm_.started)
            return "?NOT STARTED";
        vm_.haltReason = VmHaltReason::None;
        return "CONTINUING AT " + hex(vm_.savedPc);
    }
    if (cmd == "BOOT" || cmd == "B") {
        Longword blocks = 64;
        if (t.size() == 2) {
            const auto n = hexValue(t[1]);
            if (!n || *n == 0)
                return "?COUNT";
            blocks = *n;
        }
        const Longword bytes = blocks * 512;
        if (bytes > vm_.disk.size() ||
            bytes > vm_.memPages * kPageSize)
            return "?COUNT";
        mem.writeBlock(vm_.vmPhysToReal(0),
                       {vm_.disk.data(), bytes});
        hv_.startVm(vm_, 0x200);
        return "BOOTED " + hex(blocks) + " BLOCKS, STARTED AT 00000200";
    }
    if (cmd == "SHOW") {
        std::ostringstream os;
        os << vm_.name() << ": "
           << (vm_.halted() ? "halted" : vm_.waiting ? "waiting"
                                                     : "runnable")
           << " pc=" << hex(vm_.savedPc)
           << " mem=" << vm_.memPages * kPageSize / 1024 << "KB"
           << " traps=" << vm_.stats.emulationTraps;
        return os.str();
    }
    return "?";
}

// ---------------------------------------------------------------------------
// VmSupervisor
// ---------------------------------------------------------------------------

void
VmSupervisor::watch(VirtualMachine &vm)
{
    for (auto &w : watched_) {
        if (w.vm == &vm) {
            // Re-watching resets the baseline and the budget.
            w.snap = snapshotVm(hv_, vm);
            w.restartsLeft = config_.restartBudget;
            w.pollsSinceSnapshot = 0;
            return;
        }
    }
    watched_.push_back(Watched{&vm, snapshotVm(hv_, vm),
                               config_.restartBudget});
}

int
VmSupervisor::poll()
{
    int restarted = 0;
    for (auto &w : watched_) {
        VirtualMachine &vm = *w.vm;
        if (vm.halted()) {
            if (!restartable(vm.haltReason) || w.restartsLeft <= 0)
                continue;
            w.restartsLeft--;
            restoreVmInPlace(hv_, vm, w.snap);
            w.pollsSinceSnapshot = 0;
            restarts_++;
            hv_.machine().stats().vmRestarts++;
            hv_.machine().cpu().chargeCycles(
                CycleCategory::VmmIo,
                hv_.machine().costModel().vmmVmRestart);
            restarted++;
        } else if (vm.started) {
            // Only a healthy VM is worth returning to; a snapshot of
            // a VM mid-crash would just replay the crash.
            if (++w.pollsSinceSnapshot >= config_.snapshotEveryPolls) {
                w.snap = snapshotVm(hv_, vm);
                w.pollsSinceSnapshot = 0;
            }
        }
    }
    return restarted;
}

RunState
VmSupervisor::runSupervised(std::uint64_t max_instructions)
{
    const std::uint64_t start = hv_.machine().stats().instructions;
    RunState state = RunState::Halted;
    for (;;) {
        const std::uint64_t used =
            hv_.machine().stats().instructions - start;
        if (used >= max_instructions)
            break;
        const std::uint64_t slice =
            std::min<std::uint64_t>(config_.sliceInstructions,
                                    max_instructions - used);
        state = hv_.run(slice);
        const int restarted = poll();
        if (restarted > 0)
            continue;
        // Done when nothing is left to run: every started VM is
        // halted (and the poll above declined to restart it).
        bool live = false;
        for (int i = 0; i < hv_.numVms(); ++i) {
            const VirtualMachine &vm = hv_.vm(i);
            if (vm.started && !vm.halted())
                live = true;
        }
        if (!live)
            break;
    }
    return state;
}

} // namespace vvax
