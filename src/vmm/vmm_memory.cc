/**
 * @file
 * Shadow page table maintenance (paper Section 4.3): the software
 * walk of the VM's page tables, null-PTE on-demand fill with the
 * optional prefill group, protection compression, the modify fault,
 * the multi-process shadow table cache (Section 7.2), and the memory
 * fault hooks.
 */

#include "vmm/hypervisor.h"
#include "vmm/kcall.h"

#include <cstring>

#include "fault/fault_plan.h"
#include "vmm/async_disk.h"

namespace vvax {

namespace {
constexpr Longword kNullPteRaw = 0x20000000;
constexpr Longword kP1SpaceVpns = 0x200000; // VPNs in a 1 GB region
} // namespace

// ---------------------------------------------------------------------------
// VM page table walk (software)
// ---------------------------------------------------------------------------

Hypervisor::VmWalkResult
Hypervisor::walkVmTables(VirtualMachine &vm, VirtAddr va, AccessType type,
                         AccessMode real_mode)
{
    VmWalkResult r;
    const Longword write_bit =
        type == AccessType::Write ? mmparam::kWriteIntent : 0;
    const Vpn vpn = vpnOf(va);

    auto acv = [&](Longword param) {
        r.status = VmWalkResult::Status::ReflectAcv;
        r.faultParam = param | write_bit;
        return r;
    };
    auto tnv = [&](Longword param) {
        r.status = VmWalkResult::Status::ReflectTnv;
        r.faultParam = param | write_bit;
        return r;
    };

    switch (regionOf(va)) {
      case Region::Reserved:
        return acv(mmparam::kLengthViolation);
      case Region::System: {
        if (vpn >= vm.vSlr)
            return acv(mmparam::kLengthViolation);
        r.vmPteAddr = vm.vSbr + 4 * vpn; // VM-physical
        break;
      }
      case Region::P0:
      case Region::P1: {
        const bool is_p0 = regionOf(va) == Region::P0;
        if (is_p0 ? (vpn >= vm.vP0lr) : (vpn < vm.vP1lr))
            return acv(mmparam::kLengthViolation);
        const VirtAddr pte_va =
            (is_p0 ? vm.vP0br : vm.vP1br) + 4 * vpn;
        // The VM's process tables live in its S space; resolve the
        // PTE address through the VM's SPT.
        const Vpn nested = vpnOf(pte_va);
        if (regionOf(pte_va) != Region::System || nested >= vm.vSlr) {
            return acv(mmparam::kLengthViolation |
                       mmparam::kPteReference);
        }
        const PhysAddr nested_pa = vm.vSbr + 4 * nested;
        if ((nested_pa >> kPageShift) >= vm.memPages) {
            r.status = VmWalkResult::Status::HaltVm;
            return r;
        }
        const Pte spte(vmReadPhys32(vm, nested_pa));
        if (!spte.valid())
            return tnv(mmparam::kPteReference);
        if (!vm.vmPfnValid(spte.pfn())) {
            r.status = VmWalkResult::Status::HaltVm;
            return r;
        }
        r.vmPteAddr = (spte.pfn() << kPageShift) |
                      (pte_va & kPageOffsetMask);
        break;
      }
    }

    if ((r.vmPteAddr >> kPageShift) >= vm.memPages) {
        r.status = VmWalkResult::Status::HaltVm;
        return r;
    }
    r.vmPte = Pte(vmReadPhys32(vm, r.vmPteAddr));

    // Check the access the way the hardware will after the fill: with
    // the *compressed* protection against the real mode.  This is
    // what makes VM-kernel (real executive) references to
    // kernel-protected pages succeed, including the deliberate
    // blurring for VM-executive code (Section 4.3.1).
    if (!protectionPermits(compressProtection(r.vmPte.protection()),
                           real_mode, type)) {
        return acv(0);
    }
    if (!r.vmPte.valid())
        return tnv(0);
    return r;
}

PhysAddr
Hypervisor::shadowPtePa(VirtualMachine &vm, VirtAddr va) const
{
    const Vpn vpn = vpnOf(va);
    switch (regionOf(va)) {
      case Region::System:
        return vm.shadowSptPa + 4 * vpn;
      case Region::P0:
        return vm.slots[vm.activeSlot].p0TablePa + 4 * vpn;
      case Region::P1: {
        const Longword first = kP1SpaceVpns - config_.p1MaxPtes;
        return vm.slots[vm.activeSlot].p1TablePa + 4 * (vpn - first);
      }
      case Region::Reserved:
        break;
    }
    return 0;
}

void
Hypervisor::fillShadowPte(VirtualMachine &vm, VirtAddr va, Pte shadow)
{
    // Shadow tables are VMM-allocated RAM pages: store through the
    // host pointer, skipping the physical-memory dispatch.
    const Longword raw = shadow.raw();
    std::memcpy(mem_.ram().data() + shadowPtePa(vm, va), &raw, 4);
    mmu_.tbis(va);
}

// ---------------------------------------------------------------------------
// Fault service
// ---------------------------------------------------------------------------

Hypervisor::FillResult
Hypervisor::handleShadowFault(VirtualMachine &vm, VirtAddr va,
                              AccessType type, AccessMode real_mode,
                              VirtAddr pc, Psl real_psl)
{
    const CostModel &cost = machine_.costModel();
    vm.stats.shadowFaults++;

    // --- VM running with memory management off: flat VM-physical ---
    if (!vm.vMapen) {
        const Vpn vpn = vpnOf(va);
        const bool device_page = regionOf(va) == Region::P0 &&
                                 vpn == vm.memPages &&
                                 vm.config().ioMode == VmIoMode::Mmio;
        if (regionOf(va) != Region::P0 ||
            (vpn >= vm.memPages && !device_page)) {
            // Section 5: touching non-existent memory halts the VM.
            haltVm(vm, VmHaltReason::NonExistentMemory);
            return FillResult::Halted;
        }
        const Pfn real_pfn =
            device_page ? vm.mmioWindowPfn : vm.basePfn + vpn;
        fillShadowPte(vm, va,
                      Pte::make(true, Protection::UW, true, real_pfn));
        vm.stats.shadowFills++;
        charge(CycleCategory::VmmShadow, cost.vmmShadowFillPerPte);
        if (pc != 0)
            continueVm(vm, pc, real_psl);
        return FillResult::Filled;
    }

    // --- Mapped: consult the VM's page tables ---
    VmWalkResult walk = walkVmTables(vm, va, type, real_mode);
    switch (walk.status) {
      case VmWalkResult::Status::HaltVm:
        haltVm(vm, VmHaltReason::NonExistentMemory);
        return FillResult::Halted;
      case VmWalkResult::Status::ReflectAcv:
      case VmWalkResult::Status::ReflectTnv: {
        if (pc == 0) {
            // Called from a VMM memory helper (no resumable guest
            // context): report failure instead of reflecting, so the
            // caller can halt the VM rather than recurse.
            return FillResult::Reflected;
        }
        const Word vector =
            walk.status == VmWalkResult::Status::ReflectAcv
                ? static_cast<Word>(ScbVector::AccessViolation)
                : static_cast<Word>(ScbVector::TranslationNotValid);
        const Longword params[2] = {walk.faultParam, va};
        // Compose the VM's view of its PSL at the fault.
        Psl vm_psl(cpu_.vmpsl());
        vm_psl.setRaw((vm_psl.raw() &
                       ~(Psl::kPswMask | Psl::kVm)) |
                      (real_psl.raw() & Psl::kPswMask));
        vm.stats.reflectedExceptions++;
        if (!reflectToVm(vm, vector, params, 2, pc, vm_psl,
                         /*as_interrupt=*/false, 0)) {
            return FillResult::Halted;
        }
        return FillResult::Reflected;
      }
      case VmWalkResult::Status::Ok:
        break;
    }

    // Fill the shadow PTE for the faulting page, plus up to
    // prefillGroup-1 neighbours (the Section 4.3.1 anticipation
    // experiment; 1 means pure on-demand).
    Longword filled = 0;
    for (Longword i = 0; i < config_.prefillGroup; ++i) {
        const VirtAddr fill_va = va + i * kPageSize;
        if (regionOf(fill_va) != regionOf(va))
            break;
        Pte vm_pte = walk.vmPte;
        if (i > 0) {
            VmWalkResult w =
                walkVmTables(vm, fill_va, AccessType::Read, real_mode);
            if (w.status != VmWalkResult::Status::Ok)
                continue; // neighbours fill opportunistically only
            vm_pte = w.vmPte;
        }
        Pfn real_pfn;
        if (vm.vmPfnValid(vm_pte.pfn())) {
            real_pfn = vm.basePfn + vm_pte.pfn();
        } else if (vm.config().ioMode == VmIoMode::Mmio &&
                   vm_pte.pfn() == vm.memPages) {
            real_pfn = vm.mmioWindowPfn;
        } else if (i == 0) {
            haltVm(vm, VmHaltReason::NonExistentMemory);
            return FillResult::Halted;
        } else {
            continue;
        }
        const bool device = real_pfn == vm.mmioWindowPfn &&
                            vm.config().ioMode == VmIoMode::Mmio;
        const Pte shadow = Pte::make(
            true, compressProtection(vm_pte.protection()),
            device || vm_pte.modify(), real_pfn);
        fillShadowPte(vm, fill_va, shadow);
        filled++;
    }
    vm.stats.shadowFills += filled;
    charge(CycleCategory::VmmShadow,
           cost.vmmShadowFillPerPte * (filled ? filled : 1));

    if (pc != 0)
        continueVm(vm, pc, real_psl);
    return FillResult::Filled;
}

void
Hypervisor::hookMemoryFault(const HostFrame &frame, ScbVector kind)
{
    (void)kind;
    if (!frame.savedPsl.vm() || currentVm_ < 0) {
        // A memory fault outside any VM is a VMM bug.
        cpu_.externalHalt(HaltReason::ExternalRequest);
        return;
    }
    VirtualMachine &vm = *vms_[currentVm_];
    const VirtAddr va = frame.params[1];
    const AccessType type = (frame.params[0] & mmparam::kWriteIntent)
                                ? AccessType::Write
                                : AccessType::Read;
    charge(CycleCategory::VmmShadow, machine_.costModel().vmmDispatch);
    handleShadowFault(vm, va, type, frame.savedPsl.currentMode(),
                      frame.pc, frame.savedPsl);
}

void
Hypervisor::hookModifyFault(const HostFrame &frame)
{
    if (!frame.savedPsl.vm() || currentVm_ < 0) {
        cpu_.externalHalt(HaltReason::ExternalRequest);
        return;
    }
    VirtualMachine &vm = *vms_[currentVm_];
    const VirtAddr va = frame.params[1];
    const CostModel &cost = machine_.costModel();
    vm.stats.modifyFaults++;
    charge(CycleCategory::VmmShadow, cost.vmmModifyFault);

    // Set the modify bit in the shadow PTE...
    const PhysAddr spa = shadowPtePa(vm, va);
    Pte shadow(mem_.read32(spa));
    shadow.setModify(true);
    mem_.write32(spa, shadow.raw());
    mmu_.tbis(va);

    // ...and in the VM's own PTE, so the VM's page tables accurately
    // reflect the state of modified pages (Section 4.4.2).
    if (vm.vMapen) {
        VmWalkResult walk = walkVmTables(vm, va, AccessType::Write,
                                         frame.savedPsl.currentMode());
        if (walk.status == VmWalkResult::Status::Ok) {
            Pte vm_pte = walk.vmPte;
            vm_pte.setModify(true);
            vmWritePhys32(vm, walk.vmPteAddr, vm_pte.raw());
        }
    }
    continueVm(vm, frame.pc, frame.savedPsl);
}

void
Hypervisor::hookMachineCheck(const HostFrame &frame)
{
    if (frame.savedPsl.vm() && currentVm_ >= 0) {
        // Touching non-existent memory can be a symptom of a security
        // attack; the VM is halted (Section 5).
        haltVm(*vms_[currentVm_], VmHaltReason::NonExistentMemory);
        return;
    }
    cpu_.externalHalt(HaltReason::ExternalRequest);
}

// ---------------------------------------------------------------------------
// Shadow slot (Section 7.2) management
// ---------------------------------------------------------------------------

void
Hypervisor::fillNullPtes(PhysAddr pa, Longword count)
{
    // Wide batch fill through the host pointer: two PTEs per store.
    // Compare before writing: on a golden-image fork most of these
    // entries are already null in the CoW-shared image, and skipping
    // the no-op store keeps the host page physically shared instead
    // of dirtying a private copy just to rewrite identical bytes.
    Byte *p = mem_.ram().data() + pa;
    const std::uint64_t pair =
        (static_cast<std::uint64_t>(kNullPteRaw) << 32) | kNullPteRaw;
    Longword i = 0;
    for (; i + 2 <= count; i += 2, p += 8) {
        std::uint64_t cur;
        std::memcpy(&cur, p, 8);
        if (cur != pair)
            std::memcpy(p, &pair, 8);
    }
    if (i < count) {
        Longword cur;
        std::memcpy(&cur, p, 4);
        if (cur != kNullPteRaw)
            std::memcpy(p, &kNullPteRaw, 4);
    }
}

void
Hypervisor::flushShadowSlot(VirtualMachine &vm, int slot)
{
    ShadowSlot &s = vm.slots[slot];
    fillNullPtes(s.p0TablePa, config_.p0MaxPtes);
    fillNullPtes(s.p1TablePa, config_.p1MaxPtes);
    // Real-TLB entries filled from the old contents must die with
    // them; a fresh context retires them all at once.
    s.tlbCtx = mmu_.newTlbContext();
}

void
Hypervisor::flushShadowS(VirtualMachine &vm)
{
    fillNullPtes(vm.shadowSptPa, config_.vmSMaxPages);
    vm.tlbSysCtx = mmu_.newTlbContext();
}

void
Hypervisor::activateProcessSlot(VirtualMachine &vm, Longword process_key)
{
    const int usable = config_.shadowSlotsPerVm;

    if (!config_.shadowTableCache) {
        // Pre-7.2 behaviour: a single set of shadow process tables,
        // invalidated on every address space change, so a process
        // resuming after a context switch re-faults for every page.
        vm.stats.shadowCacheMisses++;
        flushShadowSlot(vm, 0);
        vm.slots[0].inUse = true;
        vm.slots[0].processKey = process_key;
        vm.activeSlot = 0;
        return;
    }

    int victim = 0;
    std::uint64_t oldest = UINT64_MAX;
    for (int s = 0; s < usable; ++s) {
        ShadowSlot &slot = vm.slots[s];
        if (slot.inUse && slot.processKey == process_key) {
            // Cache hit: the preserved shadow PTEs avoid the refill
            // faults (the ~80% reduction of Section 7.2).
            slot.lastUsed = ++slotUseCounter_;
            vm.activeSlot = s;
            vm.stats.shadowCacheHits++;
            return;
        }
        if (!slot.inUse) {
            victim = s;
            oldest = 0;
        } else if (slot.lastUsed < oldest) {
            victim = s;
            oldest = slot.lastUsed;
        }
    }
    vm.stats.shadowCacheMisses++;
    flushShadowSlot(vm, victim);
    ShadowSlot &slot = vm.slots[victim];
    slot.inUse = true;
    slot.processKey = process_key;
    slot.lastUsed = ++slotUseCounter_;
    vm.activeSlot = victim;
}

void
Hypervisor::setRealMapForVm(VirtualMachine &vm)
{
    MmuRegisters &regs = mmu_.regs();
    regs.sbr = vm.shadowSptPa;
    regs.slr = vm.shadowSlr;
    regs.mapen = true;

    if (!vm.vMapen) {
        const ShadowSlot &slot = vm.slots[vm.physModeSlot];
        vm.activeSlot = vm.physModeSlot;
        regs.p0br = slot.p0TableVa;
        regs.p0lr = vm.memPages +
                    (vm.config().ioMode == VmIoMode::Mmio ? 1 : 0);
        regs.p1br = slot.p1TableVa -
                    4 * (kP1SpaceVpns - config_.p1MaxPtes);
        regs.p1lr = kP1SpaceVpns; // nothing valid in P1
    } else {
        const ShadowSlot &slot = vm.slots[vm.activeSlot];
        regs.p0br = slot.p0TableVa;
        regs.p0lr = vm.vP0lr;
        regs.p1br = slot.p1TableVa -
                    4 * (kP1SpaceVpns - config_.p1MaxPtes);
        regs.p1lr = vm.vP1lr;
    }

    // Instead of flushing the real TLB on every world switch, apply
    // the VM's (system, slot) TLB contexts: every entry this VM
    // filled under the same shadow tables comes back to life, every
    // other VM's (and the bare machine's) entries stay dormant.  The
    // base registers per (VM, slot, vMapen) are constants, so the
    // only per-activation variable in the map is the pair of length
    // registers - a slot whose saved limits disagree with the ones
    // just loaded loses its context, since entries filled under
    // longer limits would bypass the walk's length check.
    ShadowSlot &active = vm.slots[vm.activeSlot];
    if (active.savedP0lr != regs.p0lr || active.savedP1lr != regs.p1lr) {
        active.tlbCtx = mmu_.newTlbContext();
        active.savedP0lr = regs.p0lr;
        active.savedP1lr = regs.p1lr;
    }
    mmu_.setTlbContext(vm.tlbSysCtx, active.tlbCtx);
}

void
Hypervisor::applyTlbContext(VirtualMachine &vm)
{
    mmu_.setTlbContext(vm.tlbSysCtx, vm.slots[vm.activeSlot].tlbCtx);
}

// ---------------------------------------------------------------------------
// VM memory access helpers
// ---------------------------------------------------------------------------

Longword
Hypervisor::vmReadPhys32(VirtualMachine &vm, PhysAddr vm_pa)
{
    // Defensive: callers bounds-check VM-physical addresses, but a
    // missed (or wrapped) check must never index real memory out of
    // the VM's slice — mark the VM bad instead of trusting the
    // address.  haltReason is set directly (no scheduleNext) because
    // this can run mid-service; the scheduler notices at the next
    // continueVm.
    if (static_cast<std::uint64_t>(vm_pa) + 4 >
        static_cast<std::uint64_t>(vm.memPages) * kPageSize) {
        vm.haltReason = VmHaltReason::VmmInternal;
        return 0;
    }
    return mem_.read32(vm.vmPhysToReal(vm_pa));
}

void
Hypervisor::vmWritePhys32(VirtualMachine &vm, PhysAddr vm_pa,
                          Longword value)
{
    if (static_cast<std::uint64_t>(vm_pa) + 4 >
        static_cast<std::uint64_t>(vm.memPages) * kPageSize) {
        vm.haltReason = VmHaltReason::VmmInternal;
        return;
    }
    mem_.write32(vm.vmPhysToReal(vm_pa), value);
}

namespace {

/**
 * Would the throwing path have raised ACV or TNV for this status?
 * Those are the two faults a shadow fill can cure; everything else
 * (machine-check class) fails the access outright.
 */
constexpr bool
shadowFillable(MmStatus status)
{
    switch (status) {
      case MmStatus::LengthViolation:
      case MmStatus::AccessViolation:
      case MmStatus::PteFetchLength:     // ACV vector
      case MmStatus::TranslationNotValid:
      case MmStatus::PteFetchNotValid:   // TNV vector
        return true;
      default:
        return false;
    }
}

} // namespace

bool
Hypervisor::vmReadVirt32(VirtualMachine &vm, VirtAddr va, Longword &out)
{
    // Status-code loop: no C++ exceptions on this path (the VMM's
    // dominant exits funnel through here via MFPR/LDPCTX/CHM
    // emulation, so a throw/catch per shadow miss was pure host
    // overhead).
    MmStatus status = MmStatus::Ok;
    for (int attempt = 0; attempt < 4; ++attempt) {
        if (mmu_.tryReadV32(va, AccessMode::Executive, &out, &status))
            return true;
        if (!shadowFillable(status))
            return false;
        if (handleShadowFault(vm, va, AccessType::Read,
                              AccessMode::Executive, 0,
                              Psl()) != FillResult::Filled) {
            return false;
        }
    }
    return false;
}

bool
Hypervisor::vmWriteVirt32(VirtualMachine &vm, VirtAddr va, Longword value)
{
    MmStatus status = MmStatus::Ok;
    for (int attempt = 0; attempt < 4; ++attempt) {
        if (mmu_.tryWriteV32(va, value, AccessMode::Executive, &status))
            return true;
        if (status == MmStatus::ModifyClear) {
            // Set M in the shadow and VM PTEs, then retry.
            const PhysAddr spa = shadowPtePa(vm, va);
            Pte shadow(mem_.read32(spa));
            shadow.setModify(true);
            mem_.write32(spa, shadow.raw());
            mmu_.tbis(va);
            if (vm.vMapen) {
                VmWalkResult walk = walkVmTables(vm, va,
                                                 AccessType::Write,
                                                 AccessMode::Executive);
                if (walk.status == VmWalkResult::Status::Ok) {
                    Pte vm_pte = walk.vmPte;
                    vm_pte.setModify(true);
                    vmWritePhys32(vm, walk.vmPteAddr, vm_pte.raw());
                }
            }
            continue;
        }
        if (!shadowFillable(status))
            return false;
        if (handleShadowFault(vm, va, AccessType::Write,
                              AccessMode::Executive, 0,
                              Psl()) != FillResult::Filled) {
            return false;
        }
    }
    return false;
}

bool
Hypervisor::planDiskOp(VirtualMachine &vm, Longword block, Longword count,
                       PhysAddr vm_addr)
{
    // 64-bit arithmetic throughout: block, count and vm_addr are all
    // guest-controlled, and a 32-bit `vm_addr + bytes` can wrap past
    // the bounds check and turn into a host out-of-bounds memcpy.
    const std::uint64_t bytes = static_cast<std::uint64_t>(count) * 512;
    if (static_cast<std::uint64_t>(block) * 512 + bytes > vm.disk.size())
        return false;
    if (static_cast<std::uint64_t>(vm_addr) + bytes >
        static_cast<std::uint64_t>(vm.memPages) * kPageSize)
        return false;

    // Fault injection: decisions key on the VM's architectural disk-op
    // ordinal, so the fast and reference paths fail the exact same
    // operations.  The ordinal advances only for well-formed requests;
    // malformed ones never reach the device model.
    if (FaultPlan *plan = machine_.faultPlan()) {
        const std::uint64_t op = vm.stats.diskOps++;
        const bool hard = plan->diskRangeBad(vm.faultId(), block, count);
        if (hard || plan->shouldInject(FaultClass::DiskTransient,
                                       vm.faultId(), op)) {
            vm.stats.faultedDiskOps++;
            machine_.stats().faultsInjected[static_cast<int>(
                hard ? FaultClass::DiskHard
                     : FaultClass::DiskTransient)]++;
            charge(CycleCategory::VmmIo,
                   machine_.costModel().vmmFaultDiskService);
            return false;
        }
    } else {
        vm.stats.diskOps++;
    }
    return true;
}

bool
Hypervisor::vmDiskTransfer(VirtualMachine &vm, bool write, Longword block,
                           Longword count, PhysAddr vm_addr)
{
    // A synchronous transfer must not race the engine over the disk
    // image or reorder around an unapplied completion.
    drainAsyncDisk(vm);
    if (!planDiskOp(vm, block, count, vm_addr))
        return false;

    const std::uint64_t bytes = static_cast<std::uint64_t>(count) * 512;
    Byte *disk = vm.disk.data() + static_cast<std::uint64_t>(block) * 512;
    const PhysAddr real = vm.vmPhysToReal(vm_addr);
    const Longword len = static_cast<Longword>(bytes);
    if (write) {
        mem_.readBlock(real, {disk, len});
        vm.disk.markWritten(block, count);
    } else {
        mem_.writeBlock(real, {disk, len});
    }
    return true;
}

bool
Hypervisor::vmDiskTransferBatch(VirtualMachine &vm, PhysAddr ring,
                                Longword n_desc)
{
    using namespace kcallabi;
    // A new batch is an architectural sync point for any still-pending
    // asynchronous one (the guest may even be reusing the same ring).
    drainAsyncDisk(vm);
    if (n_desc == 0 || n_desc > kMaxBatchDescriptors)
        return false;
    const Longword ring_bytes = n_desc * kBatchDescriptorBytes;
    // 64-bit sum: ring is guest-controlled and must not wrap past the
    // bounds check into a host out-of-bounds ring snapshot.
    if (static_cast<std::uint64_t>(ring) + ring_bytes >
        static_cast<std::uint64_t>(vm.memPages) * kPageSize)
        return false;

    // Snapshot the descriptors through a host pointer before moving
    // any data: a transfer may overwrite the ring itself, and the
    // guest must see the ring it posted, not a half-updated one.
    std::array<Byte, kMaxBatchDescriptors * kBatchDescriptorBytes> descs;
    std::memcpy(descs.data(), mem_.ram().data() + vm.vmPhysToReal(ring),
                ring_bytes);

    // A torn batch stops servicing at the tear point; the tail is
    // left unserviced and reports kBatchStatusNone.  The decision
    // keys on the VM's disk-op ordinal (the value the first
    // descriptor's transfer would consume), so it is identical on the
    // fast and reference paths.
    Longword tear = n_desc;
    if (FaultPlan *plan = machine_.faultPlan()) {
        if (plan->shouldInject(FaultClass::TornBatch, vm.faultId(),
                               vm.stats.diskOps)) {
            tear = n_desc / 2;
            machine_.stats().faultsInjected[static_cast<int>(
                FaultClass::TornBatch)]++;
            charge(CycleCategory::VmmIo,
                   machine_.costModel().vmmFaultDiskService);
        }
    }

    bool all_ok = true;
    for (Longword i = 0; i < n_desc; ++i) {
        const Byte *d = descs.data() + i * kBatchDescriptorBytes;
        Longword block, count, vm_pa, flags;
        std::memcpy(&block, d + kBatchDescBlock, 4);
        std::memcpy(&count, d + kBatchDescCount, 4);
        std::memcpy(&vm_pa, d + kBatchDescVmPa, 4);
        std::memcpy(&flags, d + kBatchDescFlags, 4);
        Longword status = kBatchStatusNone;
        if (i < tear) {
            // Per-run copies go through readBlock/writeBlock so the
            // store funnel bumps page generations: a transfer into a
            // page with live translated superblocks must invalidate
            // them, exactly as a single-transfer KCALL would.
            if (vmDiskTransfer(vm, (flags & kBatchFlagWrite) != 0, block,
                               count, vm_pa)) {
                vm.stats.batchedDiskBlocks += count;
                status = kBatchStatusOk;
            } else {
                status = kBatchStatusError;
            }
        }
        if (status != kBatchStatusOk)
            all_ok = false;
        // Post the per-descriptor status (kcall.h): guest bits 15:0
        // come from the snapshot, so a transfer that clobbered its
        // own ring cannot forge a completion word.
        mem_.write32(vm.vmPhysToReal(ring + i * kBatchDescriptorBytes +
                                     kBatchDescFlags),
                     (flags & ~kBatchStatusMask) |
                         (status << kBatchStatusShift));
    }
    return all_ok;
}

// ---------------------------------------------------------------------------
// Asynchronous disk batches (docs/ARCHITECTURE.md §7)
//
// Everything architectural happens on the thread that owns the VM:
// submit resolves bounds checks, fault decisions (advancing the same
// per-VM ordinals the synchronous path uses), per-descriptor statuses
// and the completion tick, and snapshots write data into a staging
// buffer.  The I/O worker is handed nothing but host memcpys between
// the disk image and staging.  The completion - status words posted
// into the ring, read data copied in through the store funnel (page
// generations bump exactly where a synchronous batch would bump
// them), the vector-0x100 interrupt - is applied by the owning thread
// when the VM reaches the due tick, so the guest-visible ordering is
// a pure function of virtual time.
// ---------------------------------------------------------------------------

bool
Hypervisor::submitAsyncDiskBatch(VirtualMachine &vm, PhysAddr ring,
                                 Longword n_desc)
{
    using namespace kcallabi;
    drainAsyncDisk(vm); // serialize back-to-back batches
    if (n_desc == 0 || n_desc > kMaxBatchDescriptors)
        return false;
    const Longword ring_bytes = n_desc * kBatchDescriptorBytes;
    if (static_cast<std::uint64_t>(ring) + ring_bytes >
        static_cast<std::uint64_t>(vm.memPages) * kPageSize)
        return false;

    VirtualMachine::AsyncDiskBatch &ab = vm.asyncBatch;
    ab.ring = ring;
    ab.nDesc = n_desc;
    std::memcpy(ab.descs.data(), mem_.ram().data() + vm.vmPhysToReal(ring),
                ring_bytes);

    // Torn-batch decision: same ordinal key as the synchronous path.
    Longword tear = n_desc;
    if (FaultPlan *plan = machine_.faultPlan()) {
        if (plan->shouldInject(FaultClass::TornBatch, vm.faultId(),
                               vm.stats.diskOps)) {
            tear = n_desc / 2;
            machine_.stats().faultsInjected[static_cast<int>(
                FaultClass::TornBatch)]++;
            charge(CycleCategory::VmmIo,
                   machine_.costModel().vmmFaultDiskService);
        }
    }

    // Async-specific fault decisions key on the per-VM batch ordinal
    // (the value asyncDiskBatches holds before this submit bumps it),
    // resolved here on the owning thread like everything else
    // architectural.  Staging corruption (FaultClass::AsyncCorrupt)
    // fails every descriptor terminally - the completion posts
    // kBatchStatusError across the ring and moves no bytes, and the
    // guest driver recovers by re-issuing descriptors individually.
    // Note it skips planDiskOp, so the disk-op ordinal stream shifts
    // versus an unfaulted run - deterministically, since the decision
    // itself is a pure function of (seed, vm, batch ordinal).
    const std::uint64_t batch_ord = vm.stats.asyncDiskBatches;
    bool corrupt = false;
    if (FaultPlan *plan = machine_.faultPlan()) {
        if (plan->shouldInject(FaultClass::AsyncCorrupt, vm.faultId(),
                               batch_ord)) {
            corrupt = true;
            machine_.stats().faultsInjected[static_cast<int>(
                FaultClass::AsyncCorrupt)]++;
            charge(CycleCategory::VmmIo,
                   machine_.costModel().vmmFaultDiskService);
        }
    }

    // Size the staging buffer for every descriptor that will move
    // data, then resolve statuses and queue the copies.
    ab.staging.clear();
    std::vector<AsyncDiskEngine::Copy> copies;
    std::uint64_t staged = 0;
    for (Longword i = 0; i < n_desc; ++i) {
        const Byte *d = ab.descs.data() + i * kBatchDescriptorBytes;
        Longword count;
        std::memcpy(&count, d + kBatchDescCount, 4);
        staged += static_cast<std::uint64_t>(count) * 512;
    }
    // One allocation before any pointer into it is taken.
    ab.staging.reserve(staged);

    bool all_ok = true;
    for (Longword i = 0; i < n_desc; ++i) {
        const Byte *d = ab.descs.data() + i * kBatchDescriptorBytes;
        Longword block, count, vm_pa, flags;
        std::memcpy(&block, d + kBatchDescBlock, 4);
        std::memcpy(&count, d + kBatchDescCount, 4);
        std::memcpy(&vm_pa, d + kBatchDescVmPa, 4);
        std::memcpy(&flags, d + kBatchDescFlags, 4);
        // Unlike a synchronous torn batch, whose unserviced tail
        // stays kBatchStatusNone, an async completion posts a
        // terminal status for every descriptor: None is the "still
        // in flight" sentinel a polling driver spins on, so it must
        // never be a final answer (kcall.h).  Error and None demand
        // the same recovery - re-issue the descriptor individually.
        Longword status = kBatchStatusError;
        if (i < tear && !corrupt) {
            if (planDiskOp(vm, block, count, vm_pa)) {
                vm.stats.batchedDiskBlocks += count;
                status = kBatchStatusOk;
                const std::size_t bytes =
                    static_cast<std::size_t>(count) * 512;
                const std::size_t off = ab.staging.size();
                ab.staging.resize(off + bytes);
                Byte *stage = ab.staging.data() + off;
                Byte *disk = vm.disk.data() +
                             static_cast<std::uint64_t>(block) * 512;
                if ((flags & kBatchFlagWrite) != 0) {
                    // Write data is snapshotted now: the guest may
                    // scribble on the buffer the moment it resumes.
                    mem_.readBlock(vm.vmPhysToReal(vm_pa),
                                   {stage, static_cast<Longword>(bytes)});
                    copies.push_back({disk, stage, bytes});
                    vm.disk.markWritten(block, count);
                } else {
                    copies.push_back({stage, disk, bytes});
                }
            } else {
                status = kBatchStatusError;
            }
        }
        if (status != kBatchStatusOk)
            all_ok = false;
        ab.status[i] = status;
    }

    ab.allOk = all_ok;
    const Longword latency = config_.asyncDiskLatencyTicks > 0
                                 ? config_.asyncDiskLatencyTicks
                                 : 1;
    ab.dueTick = tickCount_ + latency;
    // Late completion (FaultClass::AsyncLate): stretch the latency by
    // 1..kMaxAsyncLateTicks extra virtual ticks.  The completion
    // still lands on a deterministic tick — guests see a slow disk,
    // not a nondeterministic one.
    if (FaultPlan *plan = machine_.faultPlan()) {
        if (plan->shouldInject(FaultClass::AsyncLate, vm.faultId(),
                               batch_ord)) {
            machine_.stats().faultsInjected[static_cast<int>(
                FaultClass::AsyncLate)]++;
            ab.dueTick += static_cast<Longword>(
                plan->delayTicks(FaultClass::AsyncLate, vm.faultId(),
                                 batch_ord, kMaxAsyncLateTicks));
        }
    }
    if (!asyncEngine_)
        asyncEngine_ = std::make_unique<AsyncDiskEngine>();
    ab.job = asyncEngine_->submit(std::move(copies));
    ab.pending = true;
    vm.stats.asyncDiskBatches++;
    return true;
}

void
Hypervisor::applyAsyncDiskCompletion(VirtualMachine &vm, bool bounded)
{
    using namespace kcallabi;
    VirtualMachine::AsyncDiskBatch &ab = vm.asyncBatch;
    if (!ab.pending)
        return;
    // The engine usually finished long ago; a forced drain may block
    // here, but only on host copy latency - never on guest state.
    if (bounded) {
        // Shutdown paths only (haltVm, ~Hypervisor): give up after
        // the configured timeout rather than wedge on a stuck worker.
        // The batch stays pending and its staging stays alive, so the
        // in-flight copies keep valid targets until the engine is
        // joined; nothing guest-visible was mutated.
        if (!asyncEngine_->waitFor(
                ab.job, std::chrono::milliseconds(
                            config_.asyncDiskDrainTimeoutMs)))
            return;
    } else {
        asyncEngine_->wait(ab.job);
    }

    std::size_t off = 0;
    for (Longword i = 0; i < ab.nDesc; ++i) {
        const Byte *d = ab.descs.data() + i * kBatchDescriptorBytes;
        Longword block, count, vm_pa, flags;
        std::memcpy(&block, d + kBatchDescBlock, 4);
        std::memcpy(&count, d + kBatchDescCount, 4);
        std::memcpy(&vm_pa, d + kBatchDescVmPa, 4);
        std::memcpy(&flags, d + kBatchDescFlags, 4);
        (void)block;
        if (ab.status[i] == kBatchStatusOk) {
            const std::size_t bytes = static_cast<std::size_t>(count) * 512;
            if ((flags & kBatchFlagWrite) == 0) {
                // Read data reaches guest memory through the store
                // funnel so page generations bump exactly as a
                // synchronous batch would (SMC/DMA safety).
                mem_.writeBlock(vm.vmPhysToReal(vm_pa),
                                {ab.staging.data() + off,
                                 static_cast<Longword>(bytes)});
            }
            off += bytes;
        }
        // Post the per-descriptor status (kcall.h): guest bits 15:0
        // come from the snapshot, so a transfer that clobbered its
        // own ring cannot forge a completion word.
        mem_.write32(vm.vmPhysToReal(ab.ring + i * kBatchDescriptorBytes +
                                     kBatchDescFlags),
                     (flags & ~kBatchStatusMask) |
                         (ab.status[i] << kBatchStatusShift));
    }

    charge(CycleCategory::VmmIo,
           machine_.costModel().vmmAsyncDiskCompletion);
    vm.lastDiskOpFailed = !ab.allOk;
    vm.stats.asyncDiskCompletions++;
    ab.pending = false;
    ab.staging.clear();
    vm.postInterrupt(kDiskIpl, kDiskVector);
    if (currentVm_ == vm.id())
        updatePendingIplHint(vm);
}

void
Hypervisor::drainAsyncDisk(VirtualMachine &vm, bool bounded)
{
    if (vm.asyncBatch.pending)
        applyAsyncDiskCompletion(vm, bounded);
}

void
Hypervisor::resetVmShadow(VirtualMachine &vm)
{
    // Shadow tables are pure caches of the VM's own page tables, so an
    // in-place restore only has to drop every cached translation; the
    // next resume refills them on demand.  Slot bookkeeping resets too:
    // cached process keys describe address spaces of the pre-restore
    // execution.
    flushShadowS(vm);
    for (int s = 0; s < static_cast<int>(vm.slots.size()); ++s) {
        flushShadowSlot(vm, s);
        vm.slots[s].inUse = false;
        vm.slots[s].processKey = 0;
        vm.slots[s].lastUsed = 0;
        vm.slots[s].savedP0lr = 0;
        vm.slots[s].savedP1lr = 0;
    }
    vm.activeSlot = vm.physModeSlot;
}

} // namespace vvax
