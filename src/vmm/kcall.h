/**
 * @file
 * The KCALL hypercall ABI (paper Sections 4.4.3 and 5).
 *
 * The virtual VAX initiates I/O (and other VMM services) by writing a
 * function code to the KCALL processor register with arguments in
 * R1..R3; the VMM returns a status in R0.  This replaces the VM-side
 * emulation of memory-mapped device registers, which the paper found
 * "far simpler and more cost effective" (Section 8).
 */

#ifndef VVAX_VMM_KCALL_H
#define VVAX_VMM_KCALL_H

#include "arch/scb.h"
#include "arch/types.h"

namespace vvax::kcallabi {

enum Function : Longword {
    kDiskRead = 1,  //!< R1 = block, R2 = count, R3 = VM-phys address
    kDiskWrite = 2, //!< R1 = block, R2 = count, R3 = VM-phys address
    kConsoleWrite = 3, //!< R1 = VM-phys buffer, R2 = length
    kSetUptimeMailbox = 4, //!< R1 = VM-phys address for uptime
    kYield = 5,     //!< give up the processor (like WAIT)
    kDiskBatch = 6, //!< R1 = VM-phys descriptor ring, R2 = descriptors
    kQueryFeatures = 7, //!< R0 <- feature mask (no arguments)
};

/** Status returned in R0. */
enum Status : Longword {
    kOk = 0,
    kError = 1,
};

/**
 * Feature bits returned by kQueryFeatures.  Bit 0 is deliberately
 * unused: a VMM predating kQueryFeatures answers an unknown function
 * code with kError (== 1), which a driver probing bit 0 would misread
 * as the feature being present.
 */
enum Feature : Longword {
    kFeatureDiskBatch = 2,
    /**
     * kDiskBatch completes asynchronously: R0 = kOk acknowledges the
     * submission only, every descriptor's flags<31:16> stays
     * kBatchStatusNone until the VMM posts the real statuses, and the
     * vector-0x100 interrupt marks the completion.  A driver that saw
     * this bit must poll the status field (or wait for the interrupt)
     * after a successful submit before trusting the data; clearing
     * flags<31:16> before the call is what arms the poll.  An async
     * completion posts a terminal status into every descriptor -
     * unserviced descriptors (e.g. a torn batch's tail) read
     * kBatchStatusError rather than staying kBatchStatusNone, so a
     * poll always terminates.  Implies kFeatureDiskBatch.
     */
    kFeatureDiskAsync = 4,
};

/**
 * kDiskBatch descriptor ring layout: @ref kMaxBatchDescriptors
 * 16-byte entries, naturally aligned, in VM-physical memory.  Each
 * entry names one contiguous transfer; flags bit 0 selects the
 * direction (set = write to disk).  The VMM services the whole ring
 * in one exit and posts a single completion interrupt.
 */
constexpr Longword kBatchDescriptorBytes = 16;
constexpr Longword kBatchDescBlock = 0; //!< starting disk block
constexpr Longword kBatchDescCount = 4; //!< blocks to transfer
constexpr Longword kBatchDescVmPa = 8;  //!< VM-physical buffer
constexpr Longword kBatchDescFlags = 12;
constexpr Longword kBatchFlagWrite = 1;
constexpr Longword kMaxBatchDescriptors = 32;

/**
 * Per-descriptor completion status.  After servicing a ring the VMM
 * writes a status into bits 31:16 of each descriptor's flags longword
 * (the guest-owned bits 15:0 are preserved from the values the VMM
 * snapshotted at the start of the call):
 *
 *   flags<31:16> = kBatchStatusNone   descriptor never serviced (a
 *                                     torn batch leaves the tail this
 *                                     way, and earlier descriptors may
 *                                     already have transferred)
 *                  kBatchStatusOk     transfer completed
 *                  kBatchStatusError  transfer failed (bad arguments,
 *                                     out-of-range block, device error)
 *
 * kDiskBatch returns kOk in R0 only when every descriptor reports
 * kBatchStatusOk; on partial failure a driver re-issues the failed and
 * unserviced descriptors individually (kDiskRead/kDiskWrite), so a
 * torn or faulted ring degrades to per-block transfers instead of
 * silently corrupting data.  Guests must therefore clear or rewrite
 * flags<31:16> before reusing a descriptor.
 */
constexpr Longword kBatchStatusShift = 16;
constexpr Longword kBatchStatusMask = 0xFFFF0000;
constexpr Longword kBatchStatusNone = 0;
constexpr Longword kBatchStatusOk = 1;
constexpr Longword kBatchStatusError = 2;

/** Virtual disk completion interrupt (IPL 21). */
constexpr Word kDiskVector = static_cast<Word>(ScbVector::DeviceBase);
constexpr Byte kDiskIpl = kIplDisk;

} // namespace vvax::kcallabi

#endif // VVAX_VMM_KCALL_H
