/**
 * @file
 * HypervisorFleet: run many VMs on a host worker pool
 * (docs/ARCHITECTURE.md §7).
 *
 * The Hypervisor multiplexes VMs onto one RealMachine with one host
 * thread; VMs share no mutable state except that scheduler, so the
 * parallelism unit is the (machine, hypervisor) pair.  The fleet
 * gives every VM its own pair - a "member" - and dispatches runnable
 * members onto N worker threads in fixed instruction slices with a
 * barrier between rounds, merging per-member Stats/VmStats at each
 * barrier.
 *
 * Determinism is by construction: a member's execution is a pure
 * function of its own machine state, fault plan, and virtual clock,
 * so an N-worker run retires exactly the same per-VM instruction
 * stream as a 1-worker run, and per-VM memory/disk/console digests
 * and Stats are bit-identical across worker counts - including under
 * fault injection, whose decisions key on per-VM architectural
 * ordinals (VmConfig::faultVmId keeps `vm=` plan selectors meaningful
 * when every member's only VM has local id 0).
 *
 * Ownership rules (threading model):
 *  - During run(), a member belongs to exactly one worker per round;
 *    nothing else may touch its machine, hypervisor, or VM.
 *  - Between rounds (the barrier) the coordinating thread owns all
 *    members: stats merging and supervisor polls happen there or on
 *    the worker that just ran the slice, never concurrently.
 *  - Cross-thread input goes through Hypervisor's mailbox
 *    (postConsoleInput / postInterruptFromHost), which any thread may
 *    call at any time; delivery happens on the owning worker at timer
 *    ticks.
 *
 * Crash-only supervision (FleetConfig::fleetSupervision, §6d): each
 * member carries a health state machine - Healthy -> Degraded (fault
 * pressure) -> Restarting (crash, waiting out backoff) -> back to
 * Healthy via golden-image microreboot, or Quarantined once the
 * restart error budget is gone.  Every decision is made at the slice
 * boundary on the worker that owns the member that round, keyed only
 * on the member's own architectural counters and the global round
 * number, so health histories and healthy-member digests are
 * bit-identical for every worker count.  Recovery is a re-fork of the
 * member's golden image (O(pages-touched), golden_image.h) with a
 * fresh copy of its armed fault plan - the member replays the same
 * injection schedule in its next incarnation - never a PR-style
 * snapshot restore of accumulated state.  A member in restart backoff
 * stays halted but not done, so the round barrier never stalls on it;
 * quarantine marks it done and the fleet moves on.
 */

#ifndef VVAX_VMM_FLEET_H
#define VVAX_VMM_FLEET_H

#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/machine.h"
#include "fault/fault_plan.h"
#include "vmm/golden_image.h"
#include "vmm/hypervisor.h"
#include "vmm/vm_monitor.h"

namespace vvax {

/**
 * Per-member health, evaluated at slice boundaries by the worker that
 * owns the member that round (docs/ARCHITECTURE.md §6d).
 */
enum class MemberHealth : Byte {
    Healthy = 0,
    Degraded,    //!< fault pressure above thresholds; watched closely
    Restarting,  //!< crashed; waiting out microreboot backoff
    Quarantined, //!< restart budget exhausted; permanently done
};

const char *memberHealthName(MemberHealth health);

/** Crash-only supervision knobs (FleetConfig::fleetSupervision). */
struct FleetSupervisionConfig
{
    bool enabled = false;
    /**
     * Degrade when a slice's injected-disk-fault share exceeds
     * num/den of its disk ops (faulted*den > ops*num), or when a
     * single slice absorbs degradeMachineChecks machine checks - the
     * "storm" signals that precede most guest crashes.
     */
    std::uint32_t degradeFaultNum = 1;
    std::uint32_t degradeFaultDen = 4;
    std::uint64_t degradeMachineChecks = 4;
    /** Clean slices a Degraded member needs to return to Healthy. */
    int recoverSlices = 2;
    /** Microreboots allowed per member before Quarantined. */
    int restartBudget = 3;
    /**
     * Slices of backoff before the first microreboot; doubles after
     * every crash of the slot (flapping members wait longer), capped.
     * Backoff is counted in rounds - a member in backoff is halted
     * but not done, so siblings keep running and the barrier never
     * waits on it.
     */
    int backoffSlices = 1;
    int backoffCapSlices = 8;
    /**
     * Heartbeat backstop: a live member retiring zero instructions
     * for this many consecutive slices is declared wedged, halted
     * with VmmPolicy and sent through the normal crash path.
     */
    int heartbeatSlices = 4;
};

struct FleetConfig
{
    /** Host worker threads (clamped to [1, members]). */
    int workers = 1;
    /**
     * Instructions per member per round.  Rounds are the barrier
     * points: stats merge and supervisor polls happen between them.
     * The slice is in instructions, not wall time, so scheduling is
     * identical for every worker count.
     */
    std::uint64_t sliceInstructions = 50000;
    /** Configuration applied to every member's RealMachine. */
    MachineConfig machine;
    /** Configuration applied to every member's Hypervisor. */
    HypervisorConfig hypervisor;
    /**
     * Supervise members with VmSupervisor: snapshot healthy VMs and
     * restart fault-halted ones at round barriers (vm_monitor.h).
     * Forked members ignore this - their golden image *is* the
     * baseline, so crash recovery re-forks instead (forkRestartBudget).
     */
    bool supervise = false;
    VmSupervisorConfig supervisor;
    /**
     * Re-fork budget per forked member: a member added with
     * addForkedMember whose VM halts with a restartable reason
     * (VmSupervisor::restartable) is replaced by a fresh fork of its
     * golden image at the slice boundary, at most this many times.
     * Re-forking is O(pages-touched) where a snapshot restore is
     * O(memory); the member keeps its index, fault identity and armed
     * fault plan across the re-fork.
     */
    int forkRestartBudget = 0;
    /**
     * Maximum members this fleet may ever host (its spawn budget);
     * 0 means unbounded.  addVm/addForkedMember throw once reached -
     * the density backstop for golden-image fork storms.
     */
    int spawnBudget = 0;
    /**
     * Crash-only supervision of forked members: health state machine
     * plus golden-image microreboot with backoff and an error budget
     * (see the file comment).  Supersedes forkRestartBudget for fleets
     * that enable it; addVm members without a golden image quarantine
     * on crash instead of microrebooting.
     */
    FleetSupervisionConfig fleetSupervision;
};

class HypervisorFleet
{
  public:
    explicit HypervisorFleet(FleetConfig config = {});
    ~HypervisorFleet();

    HypervisorFleet(const HypervisorFleet &) = delete;
    HypervisorFleet &operator=(const HypervisorFleet &) = delete;

    /**
     * Add a member hosting one VM.  The VM's fault identity defaults
     * to the member index so plan `vm=` selectors address fleet
     * members exactly as they address VMs of a single hypervisor.
     * Returns the member index.
     */
    int addVm(const VmConfig &config);

    /**
     * Add a member forked from @p image (GoldenImage::fork) - the
     * O(pages-touched) path: the new member's RAM and disk are CoW
     * views of the sealed image.  The forked VM's fault identity is
     * its fork lineage - image.lineage() plus the count of forks this
     * fleet has already taken from that image - not its member index,
     * so the identity is stable across fleet composition and across
     * microreboots: a re-forked member replays exactly the injection
     * schedule of the incarnation it replaces.  (For the common case
     * of a fleet forked entirely from one lineage-0 image the two
     * numberings coincide.)  @p image must outlive the fleet.
     * Returns the member index.
     */
    int addForkedMember(const GoldenImage &image);
    /** Fork @p n members from @p image; returns the first index. */
    int addForkedMember(const GoldenImage &image, int n);

    /**
     * Decommission member @p i (between runs): its VM halts with
     * VmmPolicy and the member is never re-forked or restarted.
     * Siblings are unaffected.
     */
    void killMember(int i);

    int size() const { return static_cast<int>(members_.size()); }
    RealMachine &machine(int i) { return *members_[i]->machine; }
    Hypervisor &hypervisor(int i) { return *members_[i]->hv; }
    VirtualMachine &vm(int i) { return members_[i]->hv->vm(0); }

    // Convenience pass-throughs to the member's hypervisor.
    void loadVmImage(int i, PhysAddr vm_pa, std::span<const Byte> image);
    void loadVmDisk(int i, Longword block, std::span<const Byte> data);
    void startVm(int i, VirtAddr start_pc);

    /**
     * Arm a member-owned copy of @p plan on member @p i (replacing
     * any VVAX_FAULT_PLAN-installed one); pass nullptr to run the
     * member fault-free.
     */
    void setFaultPlan(int i, const FaultPlan *plan);

    /** Thread-safe console input to member @p i (mailbox; see above). */
    void postConsoleInput(int i, std::string text, Longword at_tick = 0);

    /**
     * Run every started member for up to @p max_instructions_per_vm
     * instructions on the configured worker pool.  Returns when every
     * member halted or exhausted its budget.  Call from one thread at
     * a time.
     */
    void run(std::uint64_t max_instructions_per_vm);

    /** Aggregate machine counters over all members (Stats::operator+=). */
    Stats totalMachineStats() const;
    /** Aggregate per-VM counters over all members (VmStats::operator+=). */
    VmStats totalVmStats() const;
    /** Supervisor restarts performed across the fleet. */
    std::uint64_t restarts() const;
    /** Golden-image re-forks performed across the fleet. */
    std::uint64_t forkRestarts() const;

    // ----- Crash-only supervision observability (§6d) -----------------------
    /** Member @p i's current health (call between runs). */
    MemberHealth health(int i) const;
    /** Golden-image microreboots performed by the supervision layer. */
    std::uint64_t microreboots() const;
    /** Members quarantined after exhausting their restart budget. */
    std::uint64_t quarantines() const;
    /** Pages physically copied by all microreboots (the CoW floor of
     *  each fresh incarnation) - divide by microreboots() for the
     *  mean; compare against a full snapshot restore's page count. */
    std::uint64_t pagesRecopied() const;
    /**
     * Stats merged at the last round barrier - a consistent mid-run
     * view for monitoring threads (guarded by the merge mutex).
     */
    Stats barrierStats() const;

  private:
    struct Member
    {
        int index = 0;     //!< fleet-wide index (slot number)
        int faultVmId = 0; //!< fault identity: fork lineage, stable
                           //!< across microreboots (addVm: the index)
        std::unique_ptr<RealMachine> machine;
        std::unique_ptr<Hypervisor> hv;
        std::unique_ptr<FaultPlan> plan; //!< member-owned, if armed
        /** Pristine copy of the armed plan: each microreboot re-arms
         *  from this, so a fresh incarnation replays the same
         *  schedule instead of inheriting consumed firing budgets. */
        std::unique_ptr<FaultPlan> planPristine;
        std::unique_ptr<VmSupervisor> supervisor;
        const GoldenImage *image = nullptr; //!< non-null: forked member
        int forkRestartsLeft = 0;
        bool killed = false; //!< killMember: never restarted
        std::uint64_t budgetLeft = 0;
        bool done = false;

        // --- Crash-only supervision state (owned per the threading
        //     model above: the worker running the slice this round,
        //     the coordinator at barriers) ---------------------------
        MemberHealth health = MemberHealth::Healthy;
        int incarnation = 0;       //!< microreboots of this slot
        int microrebootsLeft = 0;  //!< restart error budget remaining
        int backoffLeft = 0;       //!< rounds until pending microreboot
        int nextBackoff = 0;       //!< doubling backoff schedule
        int cleanSlices = 0;       //!< consecutive clean while Degraded
        int idleSlices = 0;        //!< heartbeat: zero-progress slices
        // Previous-slice counter baselines for per-slice deltas.
        std::uint64_t lastFaultedDiskOps = 0;
        std::uint64_t lastDiskOps = 0;
        std::uint64_t lastMachineChecks = 0;
        // Member-lifetime supervision counters; published into the
        // machine's Stats sup* gauges at barriers.
        std::uint64_t healthTransitions = 0;
        std::uint64_t microreboots = 0;
        std::uint64_t pagesRecopied = 0;
        std::uint64_t slicesDegraded = 0;
    };

    void checkSpawnBudget() const;
    void runSlice(Member &m);
    /** Replace a crashed forked member with a fresh fork; retires the
     *  dead machine's counters into the aggregate first. */
    void refork(Member &m);
    // ----- Crash-only supervision (fleet.cc §6d) ----------------------------
    /** Health state machine + recovery, run at the slice boundary by
     *  the worker owning @p m this round. */
    void superviseSlice(Member &m, std::uint64_t retired);
    void transition(Member &m, MemberHealth to);
    /** Crash-only recovery: retire the incarnation, re-fork the
     *  golden image under the same fault identity, re-arm a pristine
     *  plan copy. */
    void microreboot(Member &m);
    /** Zero the gauge-style fields (cow*, sup*) of a dying
     *  incarnation's Stats so retiring them cannot double-count
     *  against the live fleet view. */
    static void clearRetiredGauges(Stats &stats);
    /** Refresh the cow* and sup* gauge fields in the member's machine
     *  Stats. */
    void publishMemberGauges(Member &m) const;
    bool memberLive(const Member &m) const;
    void mergeAtBarrier();

    FleetConfig config_;
    std::vector<std::unique_ptr<Member>> members_;
    /** Forks taken per golden image, for lineage-based fault ids. */
    std::vector<std::pair<const GoldenImage *, int>> imageForks_;

    mutable std::mutex mergeMutex_;
    Stats barrierStats_;
    /** Counters of machines retired by refork()/microreboot(), so
     *  aggregates cover every incarnation.  Guarded by mergeMutex_. */
    Stats retiredStats_;
    VmStats retiredVmStats_;
    std::uint64_t forkRestarts_ = 0;
    std::uint64_t microreboots_ = 0;
    std::uint64_t quarantines_ = 0;
    std::uint64_t pagesRecopied_ = 0;
};

} // namespace vvax

#endif // VVAX_VMM_FLEET_H
