/**
 * @file
 * HypervisorFleet: run many VMs on a host worker pool
 * (docs/ARCHITECTURE.md §7).
 *
 * The Hypervisor multiplexes VMs onto one RealMachine with one host
 * thread; VMs share no mutable state except that scheduler, so the
 * parallelism unit is the (machine, hypervisor) pair.  The fleet
 * gives every VM its own pair - a "member" - and dispatches runnable
 * members onto N worker threads in fixed instruction slices with a
 * barrier between rounds, merging per-member Stats/VmStats at each
 * barrier.
 *
 * Determinism is by construction: a member's execution is a pure
 * function of its own machine state, fault plan, and virtual clock,
 * so an N-worker run retires exactly the same per-VM instruction
 * stream as a 1-worker run, and per-VM memory/disk/console digests
 * and Stats are bit-identical across worker counts - including under
 * fault injection, whose decisions key on per-VM architectural
 * ordinals (VmConfig::faultVmId keeps `vm=` plan selectors meaningful
 * when every member's only VM has local id 0).
 *
 * Ownership rules (threading model):
 *  - During run(), a member belongs to exactly one worker per round;
 *    nothing else may touch its machine, hypervisor, or VM.
 *  - Between rounds (the barrier) the coordinating thread owns all
 *    members: stats merging and supervisor polls happen there or on
 *    the worker that just ran the slice, never concurrently.
 *  - Cross-thread input goes through Hypervisor's mailbox
 *    (postConsoleInput / postInterruptFromHost), which any thread may
 *    call at any time; delivery happens on the owning worker at timer
 *    ticks.
 */

#ifndef VVAX_VMM_FLEET_H
#define VVAX_VMM_FLEET_H

#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/machine.h"
#include "fault/fault_plan.h"
#include "vmm/hypervisor.h"
#include "vmm/vm_monitor.h"

namespace vvax {

struct FleetConfig
{
    /** Host worker threads (clamped to [1, members]). */
    int workers = 1;
    /**
     * Instructions per member per round.  Rounds are the barrier
     * points: stats merge and supervisor polls happen between them.
     * The slice is in instructions, not wall time, so scheduling is
     * identical for every worker count.
     */
    std::uint64_t sliceInstructions = 50000;
    /** Configuration applied to every member's RealMachine. */
    MachineConfig machine;
    /** Configuration applied to every member's Hypervisor. */
    HypervisorConfig hypervisor;
    /**
     * Supervise members with VmSupervisor: snapshot healthy VMs and
     * restart fault-halted ones at round barriers (vm_monitor.h).
     */
    bool supervise = false;
    VmSupervisorConfig supervisor;
};

class HypervisorFleet
{
  public:
    explicit HypervisorFleet(FleetConfig config = {});
    ~HypervisorFleet();

    HypervisorFleet(const HypervisorFleet &) = delete;
    HypervisorFleet &operator=(const HypervisorFleet &) = delete;

    /**
     * Add a member hosting one VM.  The VM's fault identity defaults
     * to the member index so plan `vm=` selectors address fleet
     * members exactly as they address VMs of a single hypervisor.
     * Returns the member index.
     */
    int addVm(const VmConfig &config);

    int size() const { return static_cast<int>(members_.size()); }
    RealMachine &machine(int i) { return *members_[i]->machine; }
    Hypervisor &hypervisor(int i) { return *members_[i]->hv; }
    VirtualMachine &vm(int i) { return members_[i]->hv->vm(0); }

    // Convenience pass-throughs to the member's hypervisor.
    void loadVmImage(int i, PhysAddr vm_pa, std::span<const Byte> image);
    void loadVmDisk(int i, Longword block, std::span<const Byte> data);
    void startVm(int i, VirtAddr start_pc);

    /**
     * Arm a member-owned copy of @p plan on member @p i (replacing
     * any VVAX_FAULT_PLAN-installed one); pass nullptr to run the
     * member fault-free.
     */
    void setFaultPlan(int i, const FaultPlan *plan);

    /** Thread-safe console input to member @p i (mailbox; see above). */
    void postConsoleInput(int i, std::string text, Longword at_tick = 0);

    /**
     * Run every started member for up to @p max_instructions_per_vm
     * instructions on the configured worker pool.  Returns when every
     * member halted or exhausted its budget.  Call from one thread at
     * a time.
     */
    void run(std::uint64_t max_instructions_per_vm);

    /** Aggregate machine counters over all members (Stats::operator+=). */
    Stats totalMachineStats() const;
    /** Aggregate per-VM counters over all members (VmStats::operator+=). */
    VmStats totalVmStats() const;
    /** Supervisor restarts performed across the fleet. */
    std::uint64_t restarts() const;
    /**
     * Stats merged at the last round barrier - a consistent mid-run
     * view for monitoring threads (guarded by the merge mutex).
     */
    Stats barrierStats() const;

  private:
    struct Member
    {
        std::unique_ptr<RealMachine> machine;
        std::unique_ptr<Hypervisor> hv;
        std::unique_ptr<FaultPlan> plan; //!< member-owned, if armed
        std::unique_ptr<VmSupervisor> supervisor;
        std::uint64_t budgetLeft = 0;
        bool done = false;
    };

    void runSlice(Member &m);
    bool memberLive(const Member &m) const;
    void mergeAtBarrier();

    FleetConfig config_;
    std::vector<std::unique_ptr<Member>> members_;

    mutable std::mutex mergeMutex_;
    Stats barrierStats_;
};

} // namespace vvax

#endif // VVAX_VMM_FLEET_H
