/**
 * @file
 * HypervisorFleet: run many VMs on a host worker pool
 * (docs/ARCHITECTURE.md §7).
 *
 * The Hypervisor multiplexes VMs onto one RealMachine with one host
 * thread; VMs share no mutable state except that scheduler, so the
 * parallelism unit is the (machine, hypervisor) pair.  The fleet
 * gives every VM its own pair - a "member" - and dispatches runnable
 * members onto N worker threads in fixed instruction slices with a
 * barrier between rounds, merging per-member Stats/VmStats at each
 * barrier.
 *
 * Determinism is by construction: a member's execution is a pure
 * function of its own machine state, fault plan, and virtual clock,
 * so an N-worker run retires exactly the same per-VM instruction
 * stream as a 1-worker run, and per-VM memory/disk/console digests
 * and Stats are bit-identical across worker counts - including under
 * fault injection, whose decisions key on per-VM architectural
 * ordinals (VmConfig::faultVmId keeps `vm=` plan selectors meaningful
 * when every member's only VM has local id 0).
 *
 * Ownership rules (threading model):
 *  - During run(), a member belongs to exactly one worker per round;
 *    nothing else may touch its machine, hypervisor, or VM.
 *  - Between rounds (the barrier) the coordinating thread owns all
 *    members: stats merging and supervisor polls happen there or on
 *    the worker that just ran the slice, never concurrently.
 *  - Cross-thread input goes through Hypervisor's mailbox
 *    (postConsoleInput / postInterruptFromHost), which any thread may
 *    call at any time; delivery happens on the owning worker at timer
 *    ticks.
 */

#ifndef VVAX_VMM_FLEET_H
#define VVAX_VMM_FLEET_H

#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/machine.h"
#include "fault/fault_plan.h"
#include "vmm/golden_image.h"
#include "vmm/hypervisor.h"
#include "vmm/vm_monitor.h"

namespace vvax {

struct FleetConfig
{
    /** Host worker threads (clamped to [1, members]). */
    int workers = 1;
    /**
     * Instructions per member per round.  Rounds are the barrier
     * points: stats merge and supervisor polls happen between them.
     * The slice is in instructions, not wall time, so scheduling is
     * identical for every worker count.
     */
    std::uint64_t sliceInstructions = 50000;
    /** Configuration applied to every member's RealMachine. */
    MachineConfig machine;
    /** Configuration applied to every member's Hypervisor. */
    HypervisorConfig hypervisor;
    /**
     * Supervise members with VmSupervisor: snapshot healthy VMs and
     * restart fault-halted ones at round barriers (vm_monitor.h).
     * Forked members ignore this - their golden image *is* the
     * baseline, so crash recovery re-forks instead (forkRestartBudget).
     */
    bool supervise = false;
    VmSupervisorConfig supervisor;
    /**
     * Re-fork budget per forked member: a member added with
     * addForkedMember whose VM halts with a restartable reason
     * (VmSupervisor::restartable) is replaced by a fresh fork of its
     * golden image at the slice boundary, at most this many times.
     * Re-forking is O(pages-touched) where a snapshot restore is
     * O(memory); the member keeps its index, fault identity and armed
     * fault plan across the re-fork.
     */
    int forkRestartBudget = 0;
    /**
     * Maximum members this fleet may ever host (its spawn budget);
     * 0 means unbounded.  addVm/addForkedMember throw once reached -
     * the density backstop for golden-image fork storms.
     */
    int spawnBudget = 0;
};

class HypervisorFleet
{
  public:
    explicit HypervisorFleet(FleetConfig config = {});
    ~HypervisorFleet();

    HypervisorFleet(const HypervisorFleet &) = delete;
    HypervisorFleet &operator=(const HypervisorFleet &) = delete;

    /**
     * Add a member hosting one VM.  The VM's fault identity defaults
     * to the member index so plan `vm=` selectors address fleet
     * members exactly as they address VMs of a single hypervisor.
     * Returns the member index.
     */
    int addVm(const VmConfig &config);

    /**
     * Add a member forked from @p image (GoldenImage::fork) - the
     * O(pages-touched) path: the new member's RAM and disk are CoW
     * views of the sealed image.  The forked VM's fault identity is
     * the member index, exactly as addVm assigns it, so fault-plan
     * `vm=` selectors and containment guarantees are unchanged by how
     * a member came to exist.  @p image must outlive the fleet.
     * Returns the member index.
     */
    int addForkedMember(const GoldenImage &image);
    /** Fork @p n members from @p image; returns the first index. */
    int addForkedMember(const GoldenImage &image, int n);

    /**
     * Decommission member @p i (between runs): its VM halts with
     * VmmPolicy and the member is never re-forked or restarted.
     * Siblings are unaffected.
     */
    void killMember(int i);

    int size() const { return static_cast<int>(members_.size()); }
    RealMachine &machine(int i) { return *members_[i]->machine; }
    Hypervisor &hypervisor(int i) { return *members_[i]->hv; }
    VirtualMachine &vm(int i) { return members_[i]->hv->vm(0); }

    // Convenience pass-throughs to the member's hypervisor.
    void loadVmImage(int i, PhysAddr vm_pa, std::span<const Byte> image);
    void loadVmDisk(int i, Longword block, std::span<const Byte> data);
    void startVm(int i, VirtAddr start_pc);

    /**
     * Arm a member-owned copy of @p plan on member @p i (replacing
     * any VVAX_FAULT_PLAN-installed one); pass nullptr to run the
     * member fault-free.
     */
    void setFaultPlan(int i, const FaultPlan *plan);

    /** Thread-safe console input to member @p i (mailbox; see above). */
    void postConsoleInput(int i, std::string text, Longword at_tick = 0);

    /**
     * Run every started member for up to @p max_instructions_per_vm
     * instructions on the configured worker pool.  Returns when every
     * member halted or exhausted its budget.  Call from one thread at
     * a time.
     */
    void run(std::uint64_t max_instructions_per_vm);

    /** Aggregate machine counters over all members (Stats::operator+=). */
    Stats totalMachineStats() const;
    /** Aggregate per-VM counters over all members (VmStats::operator+=). */
    VmStats totalVmStats() const;
    /** Supervisor restarts performed across the fleet. */
    std::uint64_t restarts() const;
    /** Golden-image re-forks performed across the fleet. */
    std::uint64_t forkRestarts() const;
    /**
     * Stats merged at the last round barrier - a consistent mid-run
     * view for monitoring threads (guarded by the merge mutex).
     */
    Stats barrierStats() const;

  private:
    struct Member
    {
        int index = 0; //!< fleet-wide index == the VM's fault identity
        std::unique_ptr<RealMachine> machine;
        std::unique_ptr<Hypervisor> hv;
        std::unique_ptr<FaultPlan> plan; //!< member-owned, if armed
        std::unique_ptr<VmSupervisor> supervisor;
        const GoldenImage *image = nullptr; //!< non-null: forked member
        int forkRestartsLeft = 0;
        bool killed = false; //!< killMember: never restarted
        std::uint64_t budgetLeft = 0;
        bool done = false;
    };

    void checkSpawnBudget() const;
    void runSlice(Member &m);
    /** Replace a crashed forked member with a fresh fork; retires the
     *  dead machine's counters into the aggregate first. */
    void refork(Member &m);
    /** Refresh the cow* gauge fields in the member's machine Stats. */
    void publishCowGauges(Member &m) const;
    bool memberLive(const Member &m) const;
    void mergeAtBarrier();

    FleetConfig config_;
    std::vector<std::unique_ptr<Member>> members_;

    mutable std::mutex mergeMutex_;
    Stats barrierStats_;
    /** Counters of machines retired by refork(), so aggregates cover
     *  every incarnation.  Guarded by mergeMutex_. */
    Stats retiredStats_;
    VmStats retiredVmStats_;
    std::uint64_t forkRestarts_ = 0;
};

} // namespace vvax

#endif // VVAX_VMM_FLEET_H
