#include "vmm/snapshot.h"

#include <cstring>
#include <stdexcept>

namespace vvax {

VmSnapshot
snapshotVm(Hypervisor &hv, const VirtualMachine &vm)
{
    // If the VM is the one the CPU stopped inside of (instruction
    // budget exits leave it live), bank its context first.
    hv.suspendAll();

    VmSnapshot s;
    s.config = vm.config();

    s.memory.resize(vm.memPages * kPageSize);
    hv.machine().memory().readBlock(
        static_cast<PhysAddr>(vm.basePfn) << kPageShift, s.memory);
    s.disk.assign(vm.disk.data(), vm.disk.data() + vm.disk.size());

    s.vSp = vm.vSp;
    s.vIsp = vm.vIsp;
    s.vmpsl = vm.vmpsl;
    s.vScbb = vm.vScbb;
    s.vPcbb = vm.vPcbb;
    s.vSbr = vm.vSbr;
    s.vSlr = vm.vSlr;
    s.vP0br = vm.vP0br;
    s.vP0lr = vm.vP0lr;
    s.vP1br = vm.vP1br;
    s.vP1lr = vm.vP1lr;
    s.vAstlvl = vm.vAstlvl;
    s.vMapen = vm.vMapen;
    s.vSisr = vm.vSisr;
    s.vTodr = vm.vTodr;
    s.vIccs = vm.vIccs;
    s.vNicr = vm.vNicr;
    s.vIcr = vm.vIcr;

    s.savedPc = vm.savedPc;
    s.savedRealPsl = vm.savedRealPsl;
    s.savedRegs = vm.savedRegs;
    s.started = vm.started;
    s.waiting = vm.waiting;
    s.waitQuantaRemaining = 0; // recomputed at restore
    s.haltReason = vm.haltReason;
    s.pendingInts = vm.pendingInts;
    s.consoleOutput = vm.console.output();
    s.uptimeMailbox = vm.uptimeMailbox;
    return s;
}

void
applyVmSnapshotState(VirtualMachine &vm, const VmSnapshot &s)
{
    vm.vSp = s.vSp;
    vm.vIsp = s.vIsp;
    vm.vmpsl = s.vmpsl;
    vm.vScbb = s.vScbb;
    vm.vPcbb = s.vPcbb;
    vm.vSbr = s.vSbr;
    vm.vSlr = s.vSlr;
    vm.vP0br = s.vP0br;
    vm.vP0lr = s.vP0lr;
    vm.vP1br = s.vP1br;
    vm.vP1lr = s.vP1lr;
    vm.vAstlvl = s.vAstlvl;
    vm.vMapen = s.vMapen;
    vm.vSisr = s.vSisr;
    vm.vTodr = s.vTodr;
    vm.vIccs = s.vIccs;
    vm.vNicr = s.vNicr;
    vm.vIcr = s.vIcr;

    vm.savedPc = s.savedPc;
    vm.savedRealPsl = s.savedRealPsl;
    vm.savedRegs = s.savedRegs;
    vm.started = s.started;
    vm.waiting = s.waiting;
    vm.waitDeadline = 0; // wake at the next quantum check
    vm.haltReason = s.haltReason;
    vm.pendingInts = s.pendingInts;
    vm.uptimeMailbox = s.uptimeMailbox;
}

VirtualMachine &
restoreVm(Hypervisor &hv, const VmSnapshot &s)
{
    VirtualMachine &vm = hv.createVm(s.config);

    hv.machine().memory().writeBlock(
        static_cast<PhysAddr>(vm.basePfn) << kPageShift, s.memory);
    vm.disk.assign(s.disk);

    applyVmSnapshotState(vm, s);
    // Replay the console transcript so the restored VM's output is a
    // superset continuation of the original's.
    for (char c : s.consoleOutput)
        vm.console.writeIpr(Ipr::TXDB, static_cast<Byte>(c));

    // The shadow page tables start over as null PTEs (already true
    // for a fresh VM): the first touch of every page re-faults and
    // refills from the restored VM page tables.
    return vm;
}

void
restoreVmInPlace(Hypervisor &hv, VirtualMachine &vm, const VmSnapshot &s)
{
    if (s.memory.size() !=
            static_cast<std::size_t>(vm.memPages) * kPageSize ||
        s.disk.size() != vm.disk.size()) {
        throw std::invalid_argument(
            "snapshot geometry does not match the target VM");
    }
    hv.suspendAll();

    hv.machine().memory().writeBlock(
        static_cast<PhysAddr>(vm.basePfn) << kPageShift, s.memory);
    vm.disk.overwrite(s.disk);

    applyVmSnapshotState(vm, s);

    // Execution between snapshot and restore is being undone, so its
    // transient per-VM state must not leak into the replay: no failed
    // disk op precedes the restored VM's first, the watchdog starts
    // fresh, and output the rolled-back execution buffered but never
    // flushed is discarded (the flushed transcript stays - console
    // output is an external effect, not VM state).
    vm.lastDiskOpFailed = false;
    vm.watchdogTicks = 0;
    vm.pendingConsoleOut.clear();
    vm.mmioCsr = 0;
    vm.mmioBlock = 0;
    vm.mmioCount = 0;
    vm.mmioAddr = 0;

    hv.resetVmShadow(vm);
}

} // namespace vvax
