/**
 * @file
 * Machine-level statistics: cycle accounting by category and event
 * counters.  The VMM keeps its own higher-level counters in
 * vmm/vmm_stats.h; this struct counts what the hardware sees.
 */

#ifndef VVAX_METRICS_STATS_H
#define VVAX_METRICS_STATS_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "arch/types.h"

namespace vvax {

/** Where cycles were spent. */
enum class CycleCategory : Byte {
    GuestExec = 0,     //!< instructions executed directly
    ExceptionDispatch, //!< microcode trap/interrupt delivery
    MemoryManagement,  //!< TLB misses, PTE fetches, hardware M-bit sets
    VmmEmulation,      //!< VMM sensitive-instruction emulation
    VmmShadow,         //!< VMM shadow page table maintenance
    VmmIo,             //!< VMM virtual I/O service
    VmmInterrupt,      //!< VMM virtual interrupt delivery
    Idle,              //!< WAIT / no runnable VM
    NumCategories,
};

constexpr int kNumCycleCategories =
    static_cast<int>(CycleCategory::NumCategories);

std::string_view cycleCategoryName(CycleCategory cat);

/**
 * Number of fault-injection classes (enum FaultClass in
 * src/fault/fault_plan.h).  Declared here so Stats can size its
 * per-class counter array without a metrics -> fault dependency.
 */
constexpr int kNumFaultClasses = 9;

/** Counters maintained by the machine as it runs. */
struct Stats
{
    std::uint64_t instructions = 0;
    std::array<std::uint64_t, kNumCycleCategories> cycles{};

    /** Exception/interrupt dispatches indexed by SCB offset / 4. */
    std::array<std::uint64_t, 128> dispatches{};

    std::uint64_t tlbHits = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t hardwareModifySets = 0; //!< standard VAX M-bit writes
    std::uint64_t modifyFaults = 0;
    std::uint64_t translationFaults = 0;
    std::uint64_t accessViolations = 0;
    std::uint64_t vmEmulationTraps = 0;
    std::uint64_t interruptsTaken = 0;
    std::uint64_t waitInstructions = 0;

    // Translation-buffer maintenance observability: how often whole
    // halves / single pages were invalidated versus how often a
    // context re-apply let the entries survive a world switch.
    std::uint64_t tlbFlushAll = 0;        //!< tbia() invocations
    std::uint64_t tlbFlushProcess = 0;    //!< tbiaProcess() invocations
    std::uint64_t tlbFlushSingle = 0;     //!< tbis() invocations
    std::uint64_t tlbContextSwitches = 0; //!< scoped context re-applies

    /**
     * VM-emulation traps by the opcode that caused the exit (FD-page
     * opcodes fold to index 0xFD).  The per-exit-reason breakdown the
     * paper's trap-frequency argument (Section 7) is about.
     */
    std::array<std::uint64_t, 256> vmTrapOpcodes{};

    // Fault injection and recovery (src/fault/fault_plan.h defines
    // the classes; fault_plan.h static_asserts the count matches).
    // Architectural: injection sites key on architectural ordinals
    // (disk-op counts, timer ticks), so the fast and reference paths
    // must report identical values.
    std::array<std::uint64_t, kNumFaultClasses> faultsInjected{};
    std::uint64_t machineChecksDelivered = 0; //!< reflected into a VM
    std::uint64_t diskRetries = 0; //!< disk op re-issued after a failure
    std::uint64_t vmRestarts = 0;  //!< supervisor snapshot-restores

    // Superblock translation cache observability
    // (docs/ARCHITECTURE.md §5a).  Host-side counters: they describe
    // how the host executed the workload, not what the simulated
    // hardware did, so the reference interpreter (which never builds
    // blocks) legitimately reports zeros.  operator== excludes them
    // for exactly that reason.
    std::uint64_t blockBuilds = 0;        //!< superblocks translated
    std::uint64_t blockExecutions = 0;    //!< superblock entries run
    std::uint64_t blockInstructions = 0;  //!< instructions retired in blocks
    std::uint64_t blockInvalidations = 0; //!< stale blocks dropped

    // Trace tier observability (docs/ARCHITECTURE.md §5b).  Host-side
    // like the block counters above: excluded from operator==.
    std::uint64_t traceLinksFormed = 0;  //!< block->block edges patched in
    std::uint64_t traceLinksTaken = 0;   //!< crossings that bypassed dispatch
    std::uint64_t traceLinksSevered = 0; //!< edges cut by invalidation
    /** Exits whose direction differed from Block::lastDir (the link
     *  probe order's prediction).  Host-side. */
    std::uint64_t traceLinkMispredicts = 0;

    // Threaded-code tier observability (docs/ARCHITECTURE.md §5c).
    // Host-side like the block counters above: excluded from
    // operator==.
    std::uint64_t threadedCompiles = 0;     //!< blocks compiled to programs
    std::uint64_t threadedExecutions = 0;   //!< program entries run
    std::uint64_t threadedInstructions = 0; //!< instructions retired threaded
    std::uint64_t threadedBails = 0;        //!< abnormal program exits
    std::uint64_t threadedDiscards = 0;     //!< programs dropped on invalidation

    // Golden-image CoW forking gauges (docs/ARCHITECTURE.md §8),
    // published by PhysicalMemory::publishCowStats / the fleet at
    // merge barriers.  Host-side like the block counters above:
    // they describe where the host kernel keeps the fork's pages,
    // not anything the simulated hardware did, so operator==
    // excludes them (two forks of the same image are architecturally
    // identical even when one has copied-up more pages).
    std::uint64_t cowForkedRam = 0;    //!< 1 when RAM forked from an image
    std::uint64_t cowKernelBacked = 0; //!< 1 when kernel CoW is active
    std::uint64_t cowPagesTouched = 0; //!< VAX pages written since fork
    std::uint64_t cowPrivateBytes = 0; //!< host-page-rounded private bytes
    std::uint64_t cowSharedBytes = 0;  //!< bytes still shared with the image
    std::uint64_t cowDiskBlocksTouched = 0; //!< disk blocks written since fork

    // Crash-only fleet supervision (docs/ARCHITECTURE.md §6d),
    // published by HypervisorFleet when it aggregates member stats.
    // Host-side like the cow gauges: they describe the *recovery
    // machinery's* work (reboots, state-machine churn), which is
    // keyed on per-member architectural state and therefore
    // worker-count-invariant, but is no business of the lockstep
    // digest — operator== excludes them.
    std::uint64_t supHealthTransitions = 0; //!< health state changes
    std::uint64_t supMicroreboots = 0;      //!< golden-image re-forks
    std::uint64_t supQuarantines = 0;       //!< members taken out of rotation
    std::uint64_t supPagesRecopied = 0;     //!< CoW pages discarded by reboots
    std::uint64_t supTimeInDegraded = 0;    //!< member-slices spent Degraded

    void
    addCycles(CycleCategory cat, Cycles n)
    {
        cycles[static_cast<int>(cat)] += n;
    }

    std::uint64_t totalCycles() const;
    /** Cycles excluding Idle (useful for utilization ratios). */
    std::uint64_t busyCycles() const;
    std::uint64_t dispatchCount(Word scb_offset) const;

    /** Reset every counter to zero. */
    void clear();

    /**
     * Accumulate another machine's counters (HypervisorFleet merges
     * per-member machines at run barriers).  Sums everything,
     * host-side counters included: an aggregate describes total work,
     * not lockstep equality.
     */
    Stats &operator+=(const Stats &other);

    /** Pretty-print a summary table. */
    void print(std::ostream &os) const;

    /**
     * Architectural equality, used by the fast-path/reference-path
     * lockstep tests: the host fast path must leave every counter the
     * simulated hardware maintains bit-identical.  The host-side
     * block-cache counters above are deliberately excluded - they
     * measure the host execution strategy, which is the one thing the
     * two paths are allowed to differ in.
     */
    bool operator==(const Stats &other) const;
};

} // namespace vvax

#endif // VVAX_METRICS_STATS_H
