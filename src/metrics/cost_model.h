/**
 * @file
 * Per-machine-model cycle cost tables.
 *
 * The paper implemented its microcode changes on three VAX processor
 * types (VAX-11/730, VAX-11/785, VAX 8800) and reports how model
 * differences changed the cost balance: the 730 prototype kept the
 * VM's interrupt-priority level in microcode, while the 785/8800 had
 * no microcode space for that assist, so MTPR-to-IPL in a VM trapped
 * to the VMM and cost 10-12x the heavily optimized bare-8800 path
 * (Section 7.3).
 *
 * Cost tables are the calibrated input of this reproduction (DESIGN.md
 * Section 6): instruction base costs follow published relative VAX
 * timings, and VMM emulation path costs are sized so the structural
 * results (ratios, crossovers) match the paper.  All *counts* (traps,
 * faults, fills) are produced by execution, not by the tables.
 */

#ifndef VVAX_METRICS_COST_MODEL_H
#define VVAX_METRICS_COST_MODEL_H

#include <string_view>

#include "arch/types.h"

namespace vvax {

/** The three processor models the paper's team implemented on. */
enum class MachineModel : Byte {
    Vax730,  //!< vertical microcode, spacious WCS, slow; has vIPL assist
    Vax785,  //!< faster, no microcode room for the vIPL assist
    Vax8800, //!< fastest; bare MTPR-to-IPL path heavily optimized
};

std::string_view machineModelName(MachineModel model);

/**
 * Cycle costs for one machine model.  "Cycles" are abstract machine
 * cycles; only ratios are meaningful across configurations.
 */
struct CostModel
{
    MachineModel model = MachineModel::Vax8800;

    /** Multiplier (x100) applied to per-opcode base costs. */
    Longword instructionScalePct = 100;

    // --- Microcode paths -------------------------------------------------
    Cycles exceptionDispatch = 32;  //!< trap/interrupt through the SCB
    Cycles interruptDispatch = 36;
    Cycles tlbMiss = 8;             //!< single-level PTE fetch
    Cycles tlbMissProcess = 16;     //!< nested fetch through the SPT
    Cycles mtprIplBare = 10;        //!< MTPR-to-IPL executed natively
    Cycles hardwareModifySet = 4;   //!< standard VAX sets PTE<M> itself
    Cycles movpslMerge = 2;         //!< extra MOVPSL work when PSL<VM>=1
    Cycles probeShadowValid = 2;    //!< extra PROBE work when PSL<VM>=1

    /**
     * True when this model's microcode maintains the VM's IPL in
     * VMPSL and only traps when a change could make a pending virtual
     * interrupt deliverable (the VAX-11/730 prototype; Section 7.3).
     */
    bool vmIplMicrocodeAssist = false;
    /** Cost of the microcode-assisted VM MTPR-to-IPL (no VMM trap). */
    Cycles mtprIplAssisted = 18;

    // --- VMM software paths (modelled; see DESIGN.md Section 1) ---------
    Cycles vmmDispatch = 16;        //!< VMM entry bookkeeping
    Cycles vmmResume = 24;          //!< rebuild VMPSL + REI into the VM
    Cycles vmmChmEmulate = 42;      //!< stack switch, SCB lookup, frame push
    Cycles vmmReiEmulate = 50;     //!< PSL compression, stack switch, checks
    Cycles vmmShadowFillPerPte = 85; //!< read VM PTE, translate, compress
    Cycles vmmModifyFault = 48;     //!< set M in shadow and in the VM PTE
    Cycles vmmMtprIplEmulate = 30;  //!< virtual IPL update + pending check
    Cycles vmmMtprMisc = 28;        //!< other privileged register emulation
    Cycles vmmLdpctxEmulate = 170;  //!< context switch incl. table switch
    Cycles vmmSvpctxEmulate = 120;
    Cycles vmmProbeEmulate = 50;    //!< PROBE that trapped on invalid PTE
    Cycles vmmDeliverInterrupt = 55; //!< push frame into the VM
    Cycles vmmKcallIo = 150;        //!< start-I/O hypercall service
    Cycles vmmKcallDescriptor = 20; //!< per kDiskBatch ring descriptor
    Cycles vmmAsyncDiskCompletion = 60; //!< apply an async batch completion
    Cycles vmmMmioReference = 130;  //!< emulate one device register access
    Cycles vmmReflectException = 48; //!< forward a fault to the VM's SCB
    Cycles vmmWait = 40;
    Cycles vmmConsoleChar = 24;     //!< virtual console register access
    Cycles vmmConsoleCoalesce = 8;  //!< buffer one TXDB char (no device)
    Cycles vmmConsoleFlush = 40;    //!< drain the coalescing buffer

    // --- Fault handling and recovery paths (src/fault/) -----------------
    Cycles vmmFaultDiskService = 30; //!< fail a disk op / ring descriptor
    Cycles vmmMachineCheck = 90;     //!< compose + reflect a machine check
    Cycles vmmVmRestart = 400;       //!< supervisor snapshot restore

    /** Preset table for @p model. */
    static CostModel forModel(MachineModel model);
};

} // namespace vvax

#endif // VVAX_METRICS_COST_MODEL_H
