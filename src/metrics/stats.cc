#include "metrics/stats.h"

#include <iomanip>
#include <ostream>

#include "arch/scb.h"

namespace vvax {

std::string_view
cycleCategoryName(CycleCategory cat)
{
    switch (cat) {
      case CycleCategory::GuestExec: return "guest-exec";
      case CycleCategory::ExceptionDispatch: return "exception-dispatch";
      case CycleCategory::MemoryManagement: return "memory-management";
      case CycleCategory::VmmEmulation: return "vmm-emulation";
      case CycleCategory::VmmShadow: return "vmm-shadow";
      case CycleCategory::VmmIo: return "vmm-io";
      case CycleCategory::VmmInterrupt: return "vmm-interrupt";
      case CycleCategory::Idle: return "idle";
      case CycleCategory::NumCategories: break;
    }
    return "?";
}

std::uint64_t
Stats::totalCycles() const
{
    std::uint64_t total = 0;
    for (auto c : cycles)
        total += c;
    return total;
}

std::uint64_t
Stats::busyCycles() const
{
    return totalCycles() - cycles[static_cast<int>(CycleCategory::Idle)];
}

std::uint64_t
Stats::dispatchCount(Word scb_offset) const
{
    return dispatches[(scb_offset / 4) & 127];
}

void
Stats::clear()
{
    *this = Stats{};
}

Stats &
Stats::operator+=(const Stats &other)
{
    instructions += other.instructions;
    for (int i = 0; i < kNumCycleCategories; ++i)
        cycles[i] += other.cycles[i];
    for (std::size_t i = 0; i < dispatches.size(); ++i)
        dispatches[i] += other.dispatches[i];
    tlbHits += other.tlbHits;
    tlbMisses += other.tlbMisses;
    hardwareModifySets += other.hardwareModifySets;
    modifyFaults += other.modifyFaults;
    translationFaults += other.translationFaults;
    accessViolations += other.accessViolations;
    vmEmulationTraps += other.vmEmulationTraps;
    interruptsTaken += other.interruptsTaken;
    waitInstructions += other.waitInstructions;
    tlbFlushAll += other.tlbFlushAll;
    tlbFlushProcess += other.tlbFlushProcess;
    tlbFlushSingle += other.tlbFlushSingle;
    tlbContextSwitches += other.tlbContextSwitches;
    for (std::size_t i = 0; i < vmTrapOpcodes.size(); ++i)
        vmTrapOpcodes[i] += other.vmTrapOpcodes[i];
    for (int i = 0; i < kNumFaultClasses; ++i)
        faultsInjected[i] += other.faultsInjected[i];
    machineChecksDelivered += other.machineChecksDelivered;
    diskRetries += other.diskRetries;
    vmRestarts += other.vmRestarts;
    blockBuilds += other.blockBuilds;
    blockExecutions += other.blockExecutions;
    blockInstructions += other.blockInstructions;
    blockInvalidations += other.blockInvalidations;
    traceLinksFormed += other.traceLinksFormed;
    traceLinksTaken += other.traceLinksTaken;
    traceLinksSevered += other.traceLinksSevered;
    traceLinkMispredicts += other.traceLinkMispredicts;
    threadedCompiles += other.threadedCompiles;
    threadedExecutions += other.threadedExecutions;
    threadedInstructions += other.threadedInstructions;
    threadedBails += other.threadedBails;
    threadedDiscards += other.threadedDiscards;
    cowForkedRam += other.cowForkedRam;
    cowKernelBacked += other.cowKernelBacked;
    cowPagesTouched += other.cowPagesTouched;
    cowPrivateBytes += other.cowPrivateBytes;
    cowSharedBytes += other.cowSharedBytes;
    cowDiskBlocksTouched += other.cowDiskBlocksTouched;
    supHealthTransitions += other.supHealthTransitions;
    supMicroreboots += other.supMicroreboots;
    supQuarantines += other.supQuarantines;
    supPagesRecopied += other.supPagesRecopied;
    supTimeInDegraded += other.supTimeInDegraded;
    return *this;
}

bool
Stats::operator==(const Stats &other) const
{
    // Architectural counters only; the block* members are host-side
    // (see the declaration comment) and must not break lockstep.
    return instructions == other.instructions &&
           cycles == other.cycles && dispatches == other.dispatches &&
           tlbHits == other.tlbHits && tlbMisses == other.tlbMisses &&
           hardwareModifySets == other.hardwareModifySets &&
           modifyFaults == other.modifyFaults &&
           translationFaults == other.translationFaults &&
           accessViolations == other.accessViolations &&
           vmEmulationTraps == other.vmEmulationTraps &&
           interruptsTaken == other.interruptsTaken &&
           waitInstructions == other.waitInstructions &&
           tlbFlushAll == other.tlbFlushAll &&
           tlbFlushProcess == other.tlbFlushProcess &&
           tlbFlushSingle == other.tlbFlushSingle &&
           tlbContextSwitches == other.tlbContextSwitches &&
           faultsInjected == other.faultsInjected &&
           machineChecksDelivered == other.machineChecksDelivered &&
           diskRetries == other.diskRetries &&
           vmRestarts == other.vmRestarts &&
           vmTrapOpcodes == other.vmTrapOpcodes;
}

void
Stats::print(std::ostream &os) const
{
    os << "instructions: " << instructions << "\n";
    os << "cycles:\n";
    for (int i = 0; i < kNumCycleCategories; ++i) {
        if (cycles[i] == 0)
            continue;
        os << "  " << std::setw(20) << std::left
           << cycleCategoryName(static_cast<CycleCategory>(i)) << " "
           << cycles[i] << "\n";
    }
    os << "  " << std::setw(20) << std::left << "total" << totalCycles()
       << "\n";
    os << "tlb: " << tlbHits << " hits, " << tlbMisses << " misses\n";
    os << "tlb maintenance: " << tlbFlushAll << " tbia, "
       << tlbFlushProcess << " tbia-process, " << tlbFlushSingle
       << " tbis, " << tlbContextSwitches << " context switches\n";
    if (blockBuilds != 0 || blockExecutions != 0) {
        os << "superblocks: " << blockBuilds << " built, "
           << blockExecutions << " executed, " << blockInstructions
           << " instructions, " << blockInvalidations
           << " invalidated\n";
    }
    if (traceLinksFormed != 0 || traceLinksTaken != 0) {
        os << "trace links: " << traceLinksFormed << " formed, "
           << traceLinksTaken << " taken, " << traceLinksSevered
           << " severed, " << traceLinkMispredicts << " mispredicted\n";
    }
    if (threadedCompiles != 0 || threadedExecutions != 0) {
        os << "threaded tier: " << threadedCompiles << " compiled, "
           << threadedExecutions << " executed, "
           << threadedInstructions << " instructions, " << threadedBails
           << " bails, " << threadedDiscards << " discarded\n";
    }
    if (cowForkedRam != 0) {
        os << "cow fork: " << cowPagesTouched << " pages touched, "
           << cowPrivateBytes << " private bytes, " << cowSharedBytes
           << " shared bytes"
           << (cowKernelBacked != 0 ? " (kernel CoW)" : " (eager copy)")
           << ", " << cowDiskBlocksTouched << " disk blocks touched\n";
    }
    if (supMicroreboots != 0 || supQuarantines != 0 ||
        supHealthTransitions != 0) {
        os << "supervision: " << supHealthTransitions
           << " health transitions, " << supMicroreboots
           << " microreboots, " << supQuarantines << " quarantines, "
           << supPagesRecopied << " pages recopied, "
           << supTimeInDegraded << " slices degraded\n";
    }
    std::uint64_t total_faults = 0;
    for (auto c : faultsInjected)
        total_faults += c;
    if (total_faults != 0 || machineChecksDelivered != 0 ||
        diskRetries != 0 || vmRestarts != 0) {
        os << "faults: " << total_faults << " injected, "
           << machineChecksDelivered << " machine checks, " << diskRetries
           << " disk retries, " << vmRestarts << " vm restarts\n";
    }
    bool any_trap = false;
    for (auto c : vmTrapOpcodes)
        any_trap |= c != 0;
    if (any_trap) {
        os << "vm emulation traps by opcode:\n";
        for (int i = 0; i < 256; ++i) {
            if (vmTrapOpcodes[i] == 0)
                continue;
            os << "  0x" << std::hex << std::setw(2) << std::setfill('0')
               << i << std::dec << std::setfill(' ') << "               "
               << vmTrapOpcodes[i] << "\n";
        }
    }
    os << "dispatches:\n";
    for (int i = 0; i < 128; ++i) {
        if (dispatches[i] == 0)
            continue;
        const Word offset = static_cast<Word>(i * 4);
        os << "  " << std::setw(20) << std::left << scbVectorName(offset)
           << " " << dispatches[i] << "\n";
    }
}

} // namespace vvax
