#include "metrics/cost_model.h"

namespace vvax {

std::string_view
machineModelName(MachineModel model)
{
    switch (model) {
      case MachineModel::Vax730: return "VAX-11/730";
      case MachineModel::Vax785: return "VAX-11/785";
      case MachineModel::Vax8800: return "VAX 8800";
    }
    return "?";
}

CostModel
CostModel::forModel(MachineModel model)
{
    CostModel cost;
    cost.model = model;
    switch (model) {
      case MachineModel::Vax730:
        // Slow vertical-microcode machine: everything costs more, but
        // there is WCS space for the VM IPL assist, and the bare
        // MTPR-to-IPL path was never specially optimized.
        cost.instructionScalePct = 300;
        cost.exceptionDispatch = 90;
        cost.interruptDispatch = 100;
        cost.tlbMiss = 20;
        cost.tlbMissProcess = 40;
        cost.mtprIplBare = 36;
        cost.vmIplMicrocodeAssist = true;
        cost.mtprIplAssisted = 54;
        break;
      case MachineModel::Vax785:
        cost.instructionScalePct = 160;
        cost.exceptionDispatch = 48;
        cost.interruptDispatch = 52;
        cost.tlbMiss = 12;
        cost.tlbMissProcess = 24;
        cost.mtprIplBare = 16;
        cost.vmIplMicrocodeAssist = false;
        break;
      case MachineModel::Vax8800:
        // Defaults in the struct describe the 8800: fast pipeline and
        // a heavily optimized bare MTPR-to-IPL (Section 7.3).
        break;
    }
    return cost;
}

} // namespace vvax
