/**
 * @file
 * Translation lookaside buffer.
 *
 * Mirrors the VAX arrangement of separate system-space and
 * process-space halves so that a process context switch (LDPCTX)
 * invalidates only process entries.  Direct-mapped within each half.
 *
 * An entry caches the PTE and the physical address the PTE was read
 * from, so the hardware modify-bit path (standard VAX) can update
 * memory without re-walking.
 *
 * For the host fast path (docs/ARCHITECTURE.md, "Host fast path vs
 * simulated cost model") an entry additionally caches a host pointer
 * to the RAM page it maps and a precomputed permission verdict per
 * (access mode, access type).  Both are pure host-side caches: they
 * are derived from the PTE at insert time and never change what the
 * simulated hardware observes.
 *
 * Context tags: each half carries a current *context* number, and an
 * entry's tag combines the context it was inserted under with its
 * VPN.  Invalidation of a whole half is O(1) - assign the half a
 * fresh context, so every existing entry's tag stops matching - and,
 * more importantly, a previously used context can be *re-applied*
 * (setContext()), bringing all entries inserted under it back to
 * life.  The hypervisor uses this to let a VM's translations (system
 * half keyed by VM, process half keyed by shadow slot) survive
 * VMM<->VM world switches instead of being flushed on every
 * transition (docs/ARCHITECTURE.md, "TLB invalidation matrix").
 * Contexts are never reused for a different address space: they come
 * from a monotonic counter, and recycling a shadow slot allocates a
 * fresh one.
 */

#ifndef VVAX_MEMORY_TLB_H
#define VVAX_MEMORY_TLB_H

#include <array>
#include <cstdint>

#include "arch/pte.h"
#include "arch/types.h"

namespace vvax {

class Tlb
{
  public:
    /**
     * Tag value that can never match: its context part is 2^41 - 1,
     * which the monotonic context counter never reaches.
     */
    static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

    /** VPNs are global (va >> 9): 23 bits. */
    static constexpr int kVpnBits = 32 - kPageShift;
    static constexpr std::uint64_t kVpnMask =
        (std::uint64_t{1} << kVpnBits) - 1;

    struct Entry
    {
        std::uint64_t tag = kInvalidTag; //!< (context << 23) | (va >> 9)
        Pte pte;
        PhysAddr ptePa = 0; //!< where the PTE lives (for M-bit update)
        /**
         * Host pointer to the start of the mapped page when it is
         * RAM-backed, nullptr otherwise (MMIO or non-existent).  Host
         * cache only; RAM never moves, so the pointer stays valid for
         * the lifetime of the entry.
         */
        Byte *hostPage = nullptr;
        /**
         * Host pointer to the mapped page's write-generation counter
         * (PhysicalMemory::pageGenCell), non-null exactly when
         * hostPage is.  Lets the MMU's inline store paths bump the
         * counter without recomputing the page frame.
         */
        std::uint32_t *pageGen = nullptr;
        /**
         * Bit (2*mode + type) is set when an access of @p type from
         * @p mode may complete without a fresh walk: the protection
         * code permits it and, for writes, PTE<M> is already set.
         * Exactly the predicate translate() evaluates on a hit.
         */
        Byte permMask = 0;
    };

    static constexpr int kEntriesPerHalf = 256;

    /** Bit index into Entry::permMask for (mode, type). */
    static constexpr Byte
    permBit(AccessMode mode, AccessType type)
    {
        return static_cast<Byte>(
            1u << (2 * static_cast<Byte>(mode) + static_cast<Byte>(type)));
    }

    /** @return the cached entry for @p va, or nullptr on miss. */
    Entry *
    lookup(VirtAddr va)
    {
        const Longword vpn_global = va >> kPageShift;
        const int is_system = systemBit(va);
        Entry &entry = slot(vpn_global, is_system);
        if (entry.tag == combinedTag(vpn_global, is_system))
            return &entry;
        return nullptr;
    }

    void
    insert(VirtAddr va, Pte pte, PhysAddr pte_pa, Byte *host_page,
           std::uint32_t *page_gen)
    {
        const Longword vpn_global = va >> kPageShift;
        const int is_system = systemBit(va);
        Entry &entry = slot(vpn_global, is_system);
        entry.tag = combinedTag(vpn_global, is_system);
        entry.pte = pte;
        entry.ptePa = pte_pa;
        entry.hostPage = host_page;
        entry.pageGen = page_gen;
        entry.permMask = computePermMask(pte);
    }

    /** Invalidate everything (TBIA): both halves get fresh contexts. */
    void
    invalidateAll()
    {
        ctx_[0] = ++next_ctx_;
        ctx_[1] = ++next_ctx_;
    }

    /** Invalidate process-space entries only (LDPCTX). */
    void
    invalidateProcess() { ctx_[0] = ++next_ctx_; }

    /**
     * Invalidate the single page containing @p va (TBIS).  Matches on
     * the VPN part alone: all contexts share the same physical slot
     * for a given va, so the entry must die no matter which context
     * it was inserted under (the hypervisor relies on this when it
     * nulls a shadow PTE while a different context is current).
     */
    void
    invalidateSingle(VirtAddr va)
    {
        const Longword vpn_global = va >> kPageShift;
        Entry &entry = slot(vpn_global, systemBit(va));
        if ((entry.tag & kVpnMask) == vpn_global)
            entry.tag = kInvalidTag;
    }

    /**
     * Make (system, process) the current contexts.  Entries inserted
     * under these exact contexts become visible again; everything
     * else is dormant (and stays correct - a dormant entry is
     * re-validated by this tag scheme before it can ever be used).
     */
    void
    setContext(std::uint64_t system, std::uint64_t process)
    {
        ctx_[1] = system;
        ctx_[0] = process;
    }

    /** Allocate a context number never used before. */
    std::uint64_t newContext() { return ++next_ctx_; }

    std::uint64_t systemContext() const { return ctx_[1]; }
    std::uint64_t processContext() const { return ctx_[0]; }

  private:
    static Byte
    computePermMask(Pte pte)
    {
        Byte mask = 0;
        const Protection prot = pte.protection();
        for (int m = 0; m < kNumAccessModes; ++m) {
            const auto mode = static_cast<AccessMode>(m);
            if (protectionPermits(prot, mode, AccessType::Read))
                mask |= permBit(mode, AccessType::Read);
            // A write may bypass the walk only when it also would not
            // take the modify path (hardware M-set or modify fault).
            if (pte.modify() &&
                protectionPermits(prot, mode, AccessType::Write)) {
                mask |= permBit(mode, AccessType::Write);
            }
        }
        return mask;
    }

    static int
    systemBit(VirtAddr va)
    {
        return (va >> 30) == static_cast<Longword>(Region::System) ? 1 : 0;
    }

    std::uint64_t
    combinedTag(Longword vpn_global, int is_system) const
    {
        return (ctx_[is_system] << kVpnBits) | vpn_global;
    }

    /**
     * Direct-mapped slot: entries 0..255 are the process half,
     * 256..511 the system half, selected branchlessly by the region
     * bits (P0/P1/Reserved fall in the process half, exactly the
     * va-to-entry mapping of the original two-array layout).
     */
    Entry &
    slot(Longword vpn_global, int is_system)
    {
        const int index = (vpn_global & (kEntriesPerHalf - 1)) |
                          (is_system << 8);
        return entries_[index];
    }

    std::array<Entry, 2 * kEntriesPerHalf> entries_{};
    /** Current context per half: [0] = process, [1] = system. */
    std::array<std::uint64_t, 2> ctx_{1, 2};
    std::uint64_t next_ctx_ = 2;
};

} // namespace vvax

#endif // VVAX_MEMORY_TLB_H
