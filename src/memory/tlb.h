/**
 * @file
 * Translation lookaside buffer.
 *
 * Mirrors the VAX arrangement of separate system-space and
 * process-space halves so that a process context switch (LDPCTX)
 * invalidates only process entries.  Direct-mapped within each half.
 *
 * An entry caches the PTE and the physical address the PTE was read
 * from, so the hardware modify-bit path (standard VAX) can update
 * memory without re-walking.
 */

#ifndef VVAX_MEMORY_TLB_H
#define VVAX_MEMORY_TLB_H

#include <array>

#include "arch/pte.h"
#include "arch/types.h"

namespace vvax {

class Tlb
{
  public:
    struct Entry
    {
        bool valid = false;
        Longword tag = 0; //!< va >> 9
        Pte pte;
        PhysAddr ptePa = 0; //!< where the PTE lives (for M-bit update)
    };

    static constexpr int kEntriesPerHalf = 256;

    /** @return the cached entry for @p va, or nullptr on miss. */
    Entry *
    lookup(VirtAddr va)
    {
        Entry &entry = slot(va);
        if (entry.valid && entry.tag == (va >> kPageShift))
            return &entry;
        return nullptr;
    }

    void
    insert(VirtAddr va, Pte pte, PhysAddr pte_pa)
    {
        Entry &entry = slot(va);
        entry.valid = true;
        entry.tag = va >> kPageShift;
        entry.pte = pte;
        entry.ptePa = pte_pa;
    }

    /** Invalidate everything (TBIA). */
    void
    invalidateAll()
    {
        for (auto &e : system_)
            e.valid = false;
        invalidateProcess();
    }

    /** Invalidate process-space entries only (LDPCTX). */
    void
    invalidateProcess()
    {
        for (auto &e : process_)
            e.valid = false;
    }

    /** Invalidate the single page containing @p va (TBIS). */
    void
    invalidateSingle(VirtAddr va)
    {
        Entry &entry = slot(va);
        if (entry.valid && entry.tag == (va >> kPageShift))
            entry.valid = false;
    }

  private:
    Entry &
    slot(VirtAddr va)
    {
        const Longword vpn_global = va >> kPageShift;
        const int index = vpn_global & (kEntriesPerHalf - 1);
        return regionOf(va) == Region::System ? system_[index]
                                              : process_[index];
    }

    std::array<Entry, kEntriesPerHalf> system_{};
    std::array<Entry, kEntriesPerHalf> process_{};
};

} // namespace vvax

#endif // VVAX_MEMORY_TLB_H
