/**
 * @file
 * Translation lookaside buffer.
 *
 * Mirrors the VAX arrangement of separate system-space and
 * process-space halves so that a process context switch (LDPCTX)
 * invalidates only process entries.  Direct-mapped within each half.
 *
 * An entry caches the PTE and the physical address the PTE was read
 * from, so the hardware modify-bit path (standard VAX) can update
 * memory without re-walking.
 *
 * For the host fast path (docs/ARCHITECTURE.md, "Host fast path vs
 * simulated cost model") an entry additionally caches a host pointer
 * to the RAM page it maps and a precomputed permission verdict per
 * (access mode, access type).  Both are pure host-side caches: they
 * are derived from the PTE at insert time and never change what the
 * simulated hardware observes.
 */

#ifndef VVAX_MEMORY_TLB_H
#define VVAX_MEMORY_TLB_H

#include <array>

#include "arch/pte.h"
#include "arch/types.h"

namespace vvax {

class Tlb
{
  public:
    /** Tag value that can never match a real VPN (VPNs are 23 bits). */
    static constexpr Longword kInvalidTag = ~Longword{0};

    struct Entry
    {
        Longword tag = kInvalidTag; //!< va >> 9, kInvalidTag when empty
        Pte pte;
        PhysAddr ptePa = 0; //!< where the PTE lives (for M-bit update)
        /**
         * Host pointer to the start of the mapped page when it is
         * RAM-backed, nullptr otherwise (MMIO or non-existent).  Host
         * cache only; RAM never moves, so the pointer stays valid for
         * the lifetime of the entry.
         */
        Byte *hostPage = nullptr;
        /**
         * Bit (2*mode + type) is set when an access of @p type from
         * @p mode may complete without a fresh walk: the protection
         * code permits it and, for writes, PTE<M> is already set.
         * Exactly the predicate translate() evaluates on a hit.
         */
        Byte permMask = 0;
    };

    static constexpr int kEntriesPerHalf = 256;

    /** Bit index into Entry::permMask for (mode, type). */
    static constexpr Byte
    permBit(AccessMode mode, AccessType type)
    {
        return static_cast<Byte>(
            1u << (2 * static_cast<Byte>(mode) + static_cast<Byte>(type)));
    }

    /** @return the cached entry for @p va, or nullptr on miss. */
    Entry *
    lookup(VirtAddr va)
    {
        Entry &entry = slot(va);
        if (entry.tag == (va >> kPageShift))
            return &entry;
        return nullptr;
    }

    void
    insert(VirtAddr va, Pte pte, PhysAddr pte_pa, Byte *host_page)
    {
        Entry &entry = slot(va);
        entry.tag = va >> kPageShift;
        entry.pte = pte;
        entry.ptePa = pte_pa;
        entry.hostPage = host_page;
        entry.permMask = computePermMask(pte);
    }

    /** Invalidate everything (TBIA). */
    void
    invalidateAll()
    {
        for (auto &e : entries_)
            e.tag = kInvalidTag;
    }

    /** Invalidate process-space entries only (LDPCTX). */
    void
    invalidateProcess()
    {
        for (int i = 0; i < kEntriesPerHalf; ++i)
            entries_[i].tag = kInvalidTag;
    }

    /** Invalidate the single page containing @p va (TBIS). */
    void
    invalidateSingle(VirtAddr va)
    {
        Entry &entry = slot(va);
        if (entry.tag == (va >> kPageShift))
            entry.tag = kInvalidTag;
    }

  private:
    static Byte
    computePermMask(Pte pte)
    {
        Byte mask = 0;
        const Protection prot = pte.protection();
        for (int m = 0; m < kNumAccessModes; ++m) {
            const auto mode = static_cast<AccessMode>(m);
            if (protectionPermits(prot, mode, AccessType::Read))
                mask |= permBit(mode, AccessType::Read);
            // A write may bypass the walk only when it also would not
            // take the modify path (hardware M-set or modify fault).
            if (pte.modify() &&
                protectionPermits(prot, mode, AccessType::Write)) {
                mask |= permBit(mode, AccessType::Write);
            }
        }
        return mask;
    }

    /**
     * Direct-mapped slot: entries 0..255 are the process half,
     * 256..511 the system half, selected branchlessly by the region
     * bits (P0/P1/Reserved fall in the process half, exactly the
     * va-to-entry mapping of the original two-array layout).
     */
    Entry &
    slot(VirtAddr va)
    {
        const Longword vpn_global = va >> kPageShift;
        const int is_system =
            (va >> 30) == static_cast<Longword>(Region::System) ? 1 : 0;
        const int index = (vpn_global & (kEntriesPerHalf - 1)) |
                          (is_system << 8);
        return entries_[index];
    }

    std::array<Entry, 2 * kEntriesPerHalf> entries_{};
};

} // namespace vvax

#endif // VVAX_MEMORY_TLB_H
