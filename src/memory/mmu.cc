#include "memory/mmu.h"

#include <cstdlib>

namespace vvax {

Mmu::Mmu(PhysicalMemory &memory, const CostModel &cost, Stats &stats)
    : memory_(memory), cost_(cost), stats_(stats)
{
    ram_base_ = memory_.ram().data();
    ram_limit_ = memory_.ramSize();
    page_gen_base_ = memory_.pageGenData();
    if (std::getenv("VVAX_REFERENCE_PATH") != nullptr)
        fast_enabled_ = false;
}

Mmu::ProbeResult
Mmu::walk(VirtAddr va, AccessType type, AccessMode mode, bool fill_tlb)
{
    ProbeResult result;
    const Vpn vpn = vpnOf(va);
    PhysAddr pte_pa = 0;

    switch (regionOf(va)) {
      case Region::System: {
        if (vpn >= regs_.slr) {
            result.status = MmStatus::LengthViolation;
            return result;
        }
        pte_pa = regs_.sbr + 4 * vpn;
        stats_.tlbMisses++;
        stats_.addCycles(CycleCategory::MemoryManagement, cost_.tlbMiss);
        break;
      }
      case Region::P0:
      case Region::P1: {
        const bool is_p0 = regionOf(va) == Region::P0;
        if (is_p0 ? (vpn >= regs_.p0lr) : (vpn < regs_.p1lr)) {
            result.status = MmStatus::LengthViolation;
            return result;
        }
        const VirtAddr pte_va =
            (is_p0 ? regs_.p0br : regs_.p1br) + 4 * vpn;
        // The process page tables must live in S space; the PTE fetch
        // nests through the SPT and is not protection-checked (it is
        // a hardware reference).
        const Vpn nested_vpn = vpnOf(pte_va);
        if (regionOf(pte_va) != Region::System || nested_vpn >= regs_.slr) {
            result.status = MmStatus::PteFetchLength;
            return result;
        }
        const PhysAddr nested_pa = regs_.sbr + 4 * nested_vpn;
        if (!memory_.exists(nested_pa)) {
            result.status = MmStatus::PteNonExistent;
            return result;
        }
        const Pte nested_pte(memory_.read32(nested_pa));
        if (!nested_pte.valid()) {
            result.status = MmStatus::PteFetchNotValid;
            return result;
        }
        pte_pa = (nested_pte.pfn() << kPageShift) |
                 (pte_va & kPageOffsetMask);
        stats_.tlbMisses++;
        stats_.addCycles(CycleCategory::MemoryManagement,
                         cost_.tlbMissProcess);
        break;
      }
      case Region::Reserved:
        result.status = MmStatus::LengthViolation;
        return result;
    }

    if (!memory_.exists(pte_pa)) {
        result.status = MmStatus::PteNonExistent;
        return result;
    }
    result.pte = Pte(memory_.read32(pte_pa));
    result.ptePa = pte_pa;

    // The protection field is checked even when the PTE is invalid
    // (the property the paper's null-PTE shadow fill relies on).
    if (!protectionPermits(result.pte.protection(), mode, type)) {
        result.status = MmStatus::AccessViolation;
        return result;
    }
    if (!result.pte.valid()) {
        result.status = MmStatus::TranslationNotValid;
        return result;
    }
    result.pa =
        (result.pte.pfn() << kPageShift) | (va & kPageOffsetMask);
    if (type == AccessType::Write && !result.pte.modify()) {
        result.status = MmStatus::ModifyClear;
        return result;
    }
    if (fill_tlb) {
        const PhysAddr page_pa = result.pte.pfn() << kPageShift;
        tlb_.insert(va, result.pte, pte_pa, memory_.pageBase(page_pa),
                    memory_.pageGenCell(page_pa));
    }
    result.status = MmStatus::Ok;
    return result;
}

void
Mmu::raiseFault(MmStatus status, VirtAddr va, AccessType type)
{
    const Longword write_bit =
        type == AccessType::Write ? mmparam::kWriteIntent : 0;
    switch (status) {
      case MmStatus::LengthViolation:
        throw GuestFault::memoryManagement(
            ScbVector::AccessViolation,
            mmparam::kLengthViolation | write_bit, va);
      case MmStatus::AccessViolation:
        throw GuestFault::memoryManagement(ScbVector::AccessViolation,
                                           write_bit, va);
      case MmStatus::TranslationNotValid:
        throw GuestFault::memoryManagement(ScbVector::TranslationNotValid,
                                           write_bit, va);
      case MmStatus::PteFetchLength:
        throw GuestFault::memoryManagement(
            ScbVector::AccessViolation,
            mmparam::kLengthViolation | mmparam::kPteReference | write_bit,
            va);
      case MmStatus::PteFetchNotValid:
        throw GuestFault::memoryManagement(
            ScbVector::TranslationNotValid,
            mmparam::kPteReference | write_bit, va);
      case MmStatus::PteNonExistent:
        throw GuestFault::withParam(ScbVector::MachineCheck, va);
      case MmStatus::ModifyClear:
        throw GuestFault::memoryManagement(
            ScbVector::ModifyFault, mmparam::kWriteIntent | write_bit, va);
      case MmStatus::Ok:
        break;
    }
    // Unreachable; keep the compiler satisfied.
    throw GuestFault::simple(ScbVector::MachineCheck);
}

MmStatus
Mmu::resolve(VirtAddr va, AccessType type, AccessMode mode, PhysAddr *pa)
{
    if (!regs_.mapen) {
        if (!memory_.exists(va))
            return MmStatus::PteNonExistent;
        *pa = va;
        return MmStatus::Ok;
    }

    if (Tlb::Entry *entry = tlb_.lookup(va)) {
        if (protectionPermits(entry->pte.protection(), mode, type) &&
            (type == AccessType::Read || entry->pte.modify())) {
            stats_.tlbHits++;
            *pa = (entry->pte.pfn() << kPageShift) |
                  (va & kPageOffsetMask);
            return MmStatus::Ok;
        }
        // Protection failure or modify-clear: resolve via a fresh
        // walk so software updates to the PTE are honoured.
        tlb_.invalidateSingle(va);
    }

    ProbeResult result = walk(va, type, mode, /*fill_tlb=*/true);

    if (result.status == MmStatus::ModifyClear) {
        if (modify_fault_mode_) {
            // Modified VAX (Section 4.4.2): the OS/VMM sets PTE<M>.
            stats_.modifyFaults++;
            return MmStatus::ModifyClear;
        }
        // Standard VAX: hardware sets the modify bit itself.
        Pte updated = result.pte;
        updated.setModify(true);
        memory_.write32(result.ptePa, updated.raw());
        stats_.hardwareModifySets++;
        stats_.addCycles(CycleCategory::MemoryManagement,
                         cost_.hardwareModifySet);
        tlb_.insert(va, updated, result.ptePa,
                    memory_.pageBase(updated.pfn() << kPageShift),
                    memory_.pageGenCell(updated.pfn() << kPageShift));
        result.status = MmStatus::Ok;
    }

    switch (result.status) {
      case MmStatus::Ok:
        break;
      case MmStatus::LengthViolation:
      case MmStatus::AccessViolation:
      case MmStatus::PteFetchLength:
        stats_.accessViolations++;
        return result.status;
      case MmStatus::TranslationNotValid:
      case MmStatus::PteFetchNotValid:
        stats_.translationFaults++;
        return result.status;
      case MmStatus::PteNonExistent:
      case MmStatus::ModifyClear:
        return result.status;
    }

    if (!memory_.exists(result.pa))
        return MmStatus::PteNonExistent;
    *pa = result.pa;
    return MmStatus::Ok;
}

PhysAddr
Mmu::translateSlow(VirtAddr va, AccessType type, AccessMode mode)
{
    PhysAddr pa = 0;
    const MmStatus status = resolve(va, type, mode, &pa);
    if (status == MmStatus::Ok)
        return pa;
    raiseFault(status, va, type);
}

Mmu::ProbeResult
Mmu::probe(VirtAddr va, AccessType type, AccessMode mode)
{
    if (!regs_.mapen) {
        ProbeResult result;
        result.status =
            memory_.exists(va) ? MmStatus::Ok : MmStatus::PteNonExistent;
        result.pa = va;
        return result;
    }
    if (Tlb::Entry *entry = tlb_.lookup(va)) {
        ProbeResult result;
        result.pte = entry->pte;
        result.ptePa = entry->ptePa;
        if (!protectionPermits(entry->pte.protection(), mode, type)) {
            result.status = MmStatus::AccessViolation;
        } else if (type == AccessType::Write && !entry->pte.modify()) {
            result.status = MmStatus::ModifyClear;
            result.pa = (entry->pte.pfn() << kPageShift) |
                        (va & kPageOffsetMask);
        } else {
            result.status = MmStatus::Ok;
            result.pa = (entry->pte.pfn() << kPageShift) |
                        (va & kPageOffsetMask);
        }
        return result;
    }
    return walk(va, type, mode, /*fill_tlb=*/false);
}

Byte
Mmu::readV8Slow(VirtAddr va, AccessMode mode)
{
    return memory_.read8(translateSlow(va, AccessType::Read, mode));
}

Word
Mmu::readV16Slow(VirtAddr va, AccessMode mode)
{
    if ((va & kPageOffsetMask) <= kPageSize - 2)
        return memory_.read16(translate(va, AccessType::Read, mode));
    const Byte lo = readV8(va, mode);
    const Byte hi = readV8(va + 1, mode);
    return static_cast<Word>(lo | (hi << 8));
}

Longword
Mmu::readV32Slow(VirtAddr va, AccessMode mode)
{
    if ((va & kPageOffsetMask) <= kPageSize - 4)
        return memory_.read32(translate(va, AccessType::Read, mode));
    Longword value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<Longword>(readV8(va + i, mode)) << (8 * i);
    return value;
}

void
Mmu::writeV8Slow(VirtAddr va, Byte value, AccessMode mode)
{
    memory_.write8(translateSlow(va, AccessType::Write, mode), value);
}

void
Mmu::writeV16Slow(VirtAddr va, Word value, AccessMode mode)
{
    if ((va & kPageOffsetMask) <= kPageSize - 2) {
        memory_.write16(translate(va, AccessType::Write, mode), value);
        return;
    }
    writeV8(va, static_cast<Byte>(value), mode);
    writeV8(va + 1, static_cast<Byte>(value >> 8), mode);
}

void
Mmu::writeV32Slow(VirtAddr va, Longword value, AccessMode mode)
{
    if ((va & kPageOffsetMask) <= kPageSize - 4) {
        memory_.write32(translate(va, AccessType::Write, mode), value);
        return;
    }
    for (int i = 0; i < 4; ++i)
        writeV8(va + i, static_cast<Byte>(value >> (8 * i)), mode);
}

bool
Mmu::tryReadV32Slow(VirtAddr va, AccessMode mode, Longword *value,
                    MmStatus *status)
{
    if ((va & kPageOffsetMask) <= kPageSize - 4) {
        PhysAddr pa = 0;
        const MmStatus st = resolve(va, AccessType::Read, mode, &pa);
        if (st != MmStatus::Ok) {
            *status = st;
            return false;
        }
        *value = memory_.read32(pa);
        return true;
    }
    // Page-crossing: per-byte composition, exactly like readV32Slow.
    Longword v = 0;
    for (int i = 0; i < 4; ++i) {
        PhysAddr pa = 0;
        const MmStatus st = resolve(va + i, AccessType::Read, mode, &pa);
        if (st != MmStatus::Ok) {
            *status = st;
            return false;
        }
        v |= static_cast<Longword>(memory_.read8(pa)) << (8 * i);
    }
    *value = v;
    return true;
}

bool
Mmu::tryWriteV32Slow(VirtAddr va, Longword value, AccessMode mode,
                     MmStatus *status)
{
    if ((va & kPageOffsetMask) <= kPageSize - 4) {
        PhysAddr pa = 0;
        const MmStatus st = resolve(va, AccessType::Write, mode, &pa);
        if (st != MmStatus::Ok) {
            *status = st;
            return false;
        }
        memory_.write32(pa, value);
        return true;
    }
    // Page-crossing: per-byte, with the same partial-write semantics
    // as writeV32Slow (bytes before a faulting byte land; the caller's
    // retry after fixing the fault rewrites them idempotently).
    for (int i = 0; i < 4; ++i) {
        PhysAddr pa = 0;
        const MmStatus st = resolve(va + i, AccessType::Write, mode, &pa);
        if (st != MmStatus::Ok) {
            *status = st;
            return false;
        }
        memory_.write8(pa, static_cast<Byte>(value >> (8 * i)));
    }
    return true;
}

} // namespace vvax
