/**
 * @file
 * VAX memory management unit: translation, protection, modify bit.
 *
 * Implements the three-region translation of the VAX architecture:
 * the System Page Table is located by a *physical* base (SBR), while
 * the per-process P0/P1 tables live at *virtual* S-space addresses
 * (P0BR/P1BR), so a process translation nests through the SPT.
 *
 * Two modify-bit disciplines are selectable (paper Section 4.4.2):
 * the standard VAX sets PTE<M> in memory on the first legal write to
 * a page; the modified VAX instead raises a *modify fault* so the
 * operating system (or VMM) sets the bit explicitly.
 *
 * Protection is checked even when PTE<V> is clear - the property the
 * paper's null-PTE shadow discipline relies on (Section 4.3.1).
 */

#ifndef VVAX_MEMORY_MMU_H
#define VVAX_MEMORY_MMU_H

#include "arch/exceptions.h"
#include "arch/pte.h"
#include "arch/types.h"
#include "memory/physical_memory.h"
#include "memory/tlb.h"
#include "metrics/cost_model.h"
#include "metrics/stats.h"

namespace vvax {

/** Non-faulting classification of a reference, for PROBE/PROBEVM. */
enum class MmStatus : Byte {
    Ok = 0,
    LengthViolation,     //!< beyond the page table (an access violation)
    AccessViolation,     //!< protection denies the access
    TranslationNotValid, //!< PTE<V> = 0
    ModifyClear,         //!< writable and valid but PTE<M> = 0
    PteFetchLength,      //!< process PTE address beyond the SPT
    PteFetchNotValid,    //!< SPT entry for the process PTE invalid
    PteNonExistent,      //!< PTE physical address is non-existent memory
};

/** Memory management registers (loaded via MTPR). */
struct MmuRegisters
{
    bool mapen = false;
    Longword sbr = 0;  //!< physical
    Longword slr = 0;  //!< longwords (PTEs)
    Longword p0br = 0; //!< virtual, S space
    Longword p0lr = 0;
    Longword p1br = 0; //!< virtual, biased: PTE va = p1br + 4*vpn
    Longword p1lr = 0;
};

class Mmu
{
  public:
    Mmu(PhysicalMemory &memory, const CostModel &cost, Stats &stats);

    MmuRegisters &regs() { return regs_; }
    const MmuRegisters &regs() const { return regs_; }

    /** Enable the modified-VAX modify fault (Section 4.4.2). */
    void setModifyFaultMode(bool on) { modify_fault_mode_ = on; }
    bool modifyFaultMode() const { return modify_fault_mode_; }

    /**
     * Translate @p va for an access of @p type from @p mode.
     * @throws GuestFault for ACV, TNV, modify fault, machine check.
     */
    PhysAddr translate(VirtAddr va, AccessType type, AccessMode mode);

    /** Result of a non-faulting walk. */
    struct ProbeResult
    {
        MmStatus status = MmStatus::Ok;
        Pte pte;          //!< the leaf PTE (valid if status got that far)
        PhysAddr ptePa = 0;
        PhysAddr pa = 0;  //!< final physical address when Ok/ModifyClear
    };

    /**
     * Classify the reference without faulting and without side
     * effects (no TLB fill, no M-bit update).  Used by PROBE,
     * PROBEVM and the VMM.  The probe itself never raises a fault;
     * failures along the nested PTE fetch are reported as statuses.
     */
    ProbeResult probe(VirtAddr va, AccessType type, AccessMode mode);

    // Translation buffer maintenance.
    void tbia() { tlb_.invalidateAll(); }
    void tbis(VirtAddr va) { tlb_.invalidateSingle(va); }
    void tbiaProcess() { tlb_.invalidateProcess(); }

    // Virtual-address convenience accessors used by the CPU core.
    // Unaligned accesses that cross a page boundary translate each
    // page separately (as real VAX hardware does).
    Byte readV8(VirtAddr va, AccessMode mode);
    Word readV16(VirtAddr va, AccessMode mode);
    Longword readV32(VirtAddr va, AccessMode mode);
    void writeV8(VirtAddr va, Byte value, AccessMode mode);
    void writeV16(VirtAddr va, Word value, AccessMode mode);
    void writeV32(VirtAddr va, Longword value, AccessMode mode);

    PhysicalMemory &memory() { return memory_; }

  private:
    /**
     * Walk the page tables for @p va.  Shared machinery beneath both
     * translate() and probe().  Never faults; returns a status.
     * @param fill_tlb true to install the result in the TLB.
     */
    ProbeResult walk(VirtAddr va, AccessType type, AccessMode mode,
                     bool fill_tlb);

    /** Raise the GuestFault corresponding to a walk failure. */
    [[noreturn]] void raiseFault(const ProbeResult &result, VirtAddr va,
                                 AccessType type);

    PhysicalMemory &memory_;
    const CostModel &cost_;
    Stats &stats_;
    MmuRegisters regs_;
    Tlb tlb_;
    bool modify_fault_mode_ = false;
};

} // namespace vvax

#endif // VVAX_MEMORY_MMU_H
