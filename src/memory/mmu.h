/**
 * @file
 * VAX memory management unit: translation, protection, modify bit.
 *
 * Implements the three-region translation of the VAX architecture:
 * the System Page Table is located by a *physical* base (SBR), while
 * the per-process P0/P1 tables live at *virtual* S-space addresses
 * (P0BR/P1BR), so a process translation nests through the SPT.
 *
 * Two modify-bit disciplines are selectable (paper Section 4.4.2):
 * the standard VAX sets PTE<M> in memory on the first legal write to
 * a page; the modified VAX instead raises a *modify fault* so the
 * operating system (or VMM) sets the bit explicitly.
 *
 * Protection is checked even when PTE<V> is clear - the property the
 * paper's null-PTE shadow discipline relies on (Section 4.3.1).
 *
 * Host fast path (docs/ARCHITECTURE.md): the virtual accessors
 * readV8/16/32 and writeV8/16/32 first try an inlined path that goes straight to host
 * memory through the TLB entry's cached host pointer and precomputed
 * permission verdict.  The fast path takes exactly the accesses the
 * full path would complete on a TLB hit, performs the identical
 * counter updates, and falls back to the full path for everything
 * else, so every architectural counter stays bit-identical.  Setting
 * the environment variable VVAX_REFERENCE_PATH (or calling
 * setReferencePath(true)) disables it for lockstep equivalence
 * testing.
 */

#ifndef VVAX_MEMORY_MMU_H
#define VVAX_MEMORY_MMU_H

#include <cstring>

#include "arch/exceptions.h"
#include "arch/pte.h"
#include "arch/types.h"
#include "memory/physical_memory.h"
#include "memory/tlb.h"
#include "metrics/cost_model.h"
#include "metrics/stats.h"

namespace vvax {

/** Non-faulting classification of a reference, for PROBE/PROBEVM. */
enum class MmStatus : Byte {
    Ok = 0,
    LengthViolation,     //!< beyond the page table (an access violation)
    AccessViolation,     //!< protection denies the access
    TranslationNotValid, //!< PTE<V> = 0
    ModifyClear,         //!< writable and valid but PTE<M> = 0
    PteFetchLength,      //!< process PTE address beyond the SPT
    PteFetchNotValid,    //!< SPT entry for the process PTE invalid
    PteNonExistent,      //!< PTE physical address is non-existent memory
};

/** Memory management registers (loaded via MTPR). */
struct MmuRegisters
{
    bool mapen = false;
    Longword sbr = 0;  //!< physical
    Longword slr = 0;  //!< longwords (PTEs)
    Longword p0br = 0; //!< virtual, S space
    Longword p0lr = 0;
    Longword p1br = 0; //!< virtual, biased: PTE va = p1br + 4*vpn
    Longword p1lr = 0;
};

class Mmu
{
  public:
    Mmu(PhysicalMemory &memory, const CostModel &cost, Stats &stats);

    MmuRegisters &regs() { return regs_; }
    const MmuRegisters &regs() const { return regs_; }

    /** Enable the modified-VAX modify fault (Section 4.4.2). */
    void setModifyFaultMode(bool on) { modify_fault_mode_ = on; }
    bool modifyFaultMode() const { return modify_fault_mode_; }

    /**
     * Disable (true) or re-enable (false) the host fast path.  The
     * reference path keeps today's full translate()-per-byte walk for
     * lockstep equivalence testing; both paths must produce
     * bit-identical architectural state and counters.
     */
    void setReferencePath(bool on) { fast_enabled_ = !on; }
    bool referencePath() const { return !fast_enabled_; }

    /**
     * Translate @p va for an access of @p type from @p mode.
     * @throws GuestFault for ACV, TNV, modify fault, machine check.
     */
    PhysAddr
    translate(VirtAddr va, AccessType type, AccessMode mode)
    {
        if (fast_enabled_) {
            if (!regs_.mapen) {
                if (va < ram_limit_)
                    return va;
            } else if (Tlb::Entry *e = tlb_.lookup(va)) {
                if (e->permMask & Tlb::permBit(mode, type)) {
                    stats_.tlbHits++;
                    return (e->pte.pfn() << kPageShift) |
                           (va & kPageOffsetMask);
                }
            }
        }
        return translateSlow(va, type, mode);
    }

    /** Result of a non-faulting walk. */
    struct ProbeResult
    {
        MmStatus status = MmStatus::Ok;
        Pte pte;          //!< the leaf PTE (valid if status got that far)
        PhysAddr ptePa = 0;
        PhysAddr pa = 0;  //!< final physical address when Ok/ModifyClear
    };

    /**
     * Classify the reference without faulting and without side
     * effects (no TLB fill, no M-bit update).  Used by PROBE,
     * PROBEVM and the VMM.  The probe itself never raises a fault;
     * failures along the nested PTE fetch are reported as statuses.
     */
    ProbeResult probe(VirtAddr va, AccessType type, AccessMode mode);

    // Translation buffer maintenance.  Each wrapper counts the flush
    // so the benchmarks can see how much translation state dies (both
    // execution paths call the same wrappers, so the counters stay
    // lockstep-identical).
    void
    tbia()
    {
        stats_.tlbFlushAll++;
        tlb_.invalidateAll();
    }
    void
    tbis(VirtAddr va)
    {
        stats_.tlbFlushSingle++;
        tlb_.invalidateSingle(va);
    }
    void
    tbiaProcess()
    {
        stats_.tlbFlushProcess++;
        tlb_.invalidateProcess();
    }

    // Context-tagged TLB control (see Tlb).  The hypervisor applies a
    // VM's (system, process) context pair on every world switch in
    // place of a wholesale flush, so the VM's live translations
    // survive the round-trip.
    void
    setTlbContext(std::uint64_t system, std::uint64_t process)
    {
        stats_.tlbContextSwitches++;
        tlb_.setContext(system, process);
    }
    std::uint64_t newTlbContext() { return tlb_.newContext(); }
    std::uint64_t tlbSystemContext() const { return tlb_.systemContext(); }
    std::uint64_t tlbProcessContext() const
    {
        return tlb_.processContext();
    }

    /**
     * Counter-free TLB inspection under the *current* context, for
     * tests that assert which entries survived an invalidation.
     */
    Tlb::Entry *tlbPeek(VirtAddr va) { return tlb_.lookup(va); }

    /**
     * Non-throwing translate-and-read for the VMM's guest-memory
     * helpers: resolves @p va exactly like readV32 (same TLB fills,
     * same counters, same cycle charges, including the hardware
     * modify-bit path on the standard VAX) but reports failures as a
     * status instead of raising a GuestFault, keeping C++ exceptions
     * off the VMM exit path.  On failure *status tells the caller
     * which fault the throwing path would have raised.
     */
    bool
    tryReadV32(VirtAddr va, AccessMode mode, Longword *value,
               MmStatus *status)
    {
        if (fast_enabled_ && (va & kPageOffsetMask) <= kPageSize - 4) {
            if (!regs_.mapen) {
                if (static_cast<std::uint64_t>(va) + 4 <= ram_limit_) {
                    std::memcpy(value, ram_base_ + va, 4);
                    return true;
                }
            } else if (Tlb::Entry *e = tlb_.lookup(va)) {
                if (e->hostPage &&
                    (e->permMask &
                     Tlb::permBit(mode, AccessType::Read))) {
                    stats_.tlbHits++;
                    std::memcpy(value,
                                e->hostPage + (va & kPageOffsetMask), 4);
                    return true;
                }
            }
        }
        return tryReadV32Slow(va, mode, value, status);
    }

    /** Non-throwing counterpart of writeV32; see tryReadV32. */
    bool
    tryWriteV32(VirtAddr va, Longword value, AccessMode mode,
                MmStatus *status)
    {
        if (fast_enabled_ && (va & kPageOffsetMask) <= kPageSize - 4) {
            if (!regs_.mapen) {
                if (static_cast<std::uint64_t>(va) + 4 <= ram_limit_) {
                    std::memcpy(ram_base_ + va, &value, 4);
                    page_gen_base_[va >> kPageShift]++;
                    return true;
                }
            } else if (Tlb::Entry *e = tlb_.lookup(va)) {
                if (e->hostPage &&
                    (e->permMask &
                     Tlb::permBit(mode, AccessType::Write))) {
                    stats_.tlbHits++;
                    std::memcpy(e->hostPage + (va & kPageOffsetMask),
                                &value, 4);
                    ++*e->pageGen;
                    return true;
                }
            }
        }
        return tryWriteV32Slow(va, value, mode, status);
    }

    // Virtual-address convenience accessors used by the CPU core.
    // Unaligned accesses that cross a page boundary translate each
    // page separately (as real VAX hardware does).  The inline bodies
    // are the host fast path; the *Slow versions are the reference
    // path and the fallback for everything the fast path cannot
    // prove safe (MMIO, page crossings, misses, modify/protection
    // work).
    Byte
    readV8(VirtAddr va, AccessMode mode)
    {
        if (fast_enabled_) {
            if (!regs_.mapen) {
                if (va < ram_limit_)
                    return ram_base_[va];
            } else if (Tlb::Entry *e = tlb_.lookup(va)) {
                if (e->hostPage &&
                    (e->permMask &
                     Tlb::permBit(mode, AccessType::Read))) {
                    stats_.tlbHits++;
                    return e->hostPage[va & kPageOffsetMask];
                }
            }
        }
        return readV8Slow(va, mode);
    }

    Word
    readV16(VirtAddr va, AccessMode mode)
    {
        if (fast_enabled_ && (va & kPageOffsetMask) <= kPageSize - 2) {
            if (!regs_.mapen) {
                if (static_cast<std::uint64_t>(va) + 2 <= ram_limit_) {
                    Word value;
                    std::memcpy(&value, ram_base_ + va, 2);
                    return value;
                }
            } else if (Tlb::Entry *e = tlb_.lookup(va)) {
                if (e->hostPage &&
                    (e->permMask &
                     Tlb::permBit(mode, AccessType::Read))) {
                    stats_.tlbHits++;
                    Word value;
                    std::memcpy(&value,
                                e->hostPage + (va & kPageOffsetMask), 2);
                    return value;
                }
            }
        }
        return readV16Slow(va, mode);
    }

    Longword
    readV32(VirtAddr va, AccessMode mode)
    {
        if (fast_enabled_ && (va & kPageOffsetMask) <= kPageSize - 4) {
            if (!regs_.mapen) {
                if (static_cast<std::uint64_t>(va) + 4 <= ram_limit_) {
                    Longword value;
                    std::memcpy(&value, ram_base_ + va, 4);
                    return value;
                }
            } else if (Tlb::Entry *e = tlb_.lookup(va)) {
                if (e->hostPage &&
                    (e->permMask &
                     Tlb::permBit(mode, AccessType::Read))) {
                    stats_.tlbHits++;
                    Longword value;
                    std::memcpy(&value,
                                e->hostPage + (va & kPageOffsetMask), 4);
                    return value;
                }
            }
        }
        return readV32Slow(va, mode);
    }

    void
    writeV8(VirtAddr va, Byte value, AccessMode mode)
    {
        if (fast_enabled_) {
            if (!regs_.mapen) {
                if (va < ram_limit_) {
                    ram_base_[va] = value;
                    page_gen_base_[va >> kPageShift]++;
                    return;
                }
            } else if (Tlb::Entry *e = tlb_.lookup(va)) {
                if (e->hostPage &&
                    (e->permMask &
                     Tlb::permBit(mode, AccessType::Write))) {
                    stats_.tlbHits++;
                    e->hostPage[va & kPageOffsetMask] = value;
                    ++*e->pageGen;
                    return;
                }
            }
        }
        writeV8Slow(va, value, mode);
    }

    void
    writeV16(VirtAddr va, Word value, AccessMode mode)
    {
        if (fast_enabled_ && (va & kPageOffsetMask) <= kPageSize - 2) {
            if (!regs_.mapen) {
                if (static_cast<std::uint64_t>(va) + 2 <= ram_limit_) {
                    std::memcpy(ram_base_ + va, &value, 2);
                    page_gen_base_[va >> kPageShift]++;
                    return;
                }
            } else if (Tlb::Entry *e = tlb_.lookup(va)) {
                if (e->hostPage &&
                    (e->permMask &
                     Tlb::permBit(mode, AccessType::Write))) {
                    stats_.tlbHits++;
                    std::memcpy(e->hostPage + (va & kPageOffsetMask),
                                &value, 2);
                    ++*e->pageGen;
                    return;
                }
            }
        }
        writeV16Slow(va, value, mode);
    }

    void
    writeV32(VirtAddr va, Longword value, AccessMode mode)
    {
        if (fast_enabled_ && (va & kPageOffsetMask) <= kPageSize - 4) {
            if (!regs_.mapen) {
                if (static_cast<std::uint64_t>(va) + 4 <= ram_limit_) {
                    std::memcpy(ram_base_ + va, &value, 4);
                    page_gen_base_[va >> kPageShift]++;
                    return;
                }
            } else if (Tlb::Entry *e = tlb_.lookup(va)) {
                if (e->hostPage &&
                    (e->permMask &
                     Tlb::permBit(mode, AccessType::Write))) {
                    stats_.tlbHits++;
                    std::memcpy(e->hostPage + (va & kPageOffsetMask),
                                &value, 4);
                    ++*e->pageGen;
                    return;
                }
            }
        }
        writeV32Slow(va, value, mode);
    }

    /**
     * Host pointer to the instruction-stream page containing @p va,
     * for the CPU's prefetch window - non-null only when memory
     * management is off, the page is RAM and the fast path is
     * enabled.  With mapping on the window instead latches a TLB
     * entry via tlbLookup() and counts a TLB hit per fetch itself,
     * so hit/miss counters stay identical to fetching through readV*.
     */
    const Byte *
    instrPage(VirtAddr va)
    {
        if (!fast_enabled_ || regs_.mapen)
            return nullptr;
        if (static_cast<std::uint64_t>(va & ~kPageOffsetMask) + kPageSize <= ram_limit_)
            return ram_base_ + (va & ~kPageOffsetMask);
        return nullptr;
    }

    /**
     * The TLB entry covering @p va when mapping is on and the fast
     * path is enabled, nullptr otherwise (including on a TLB miss).
     * Pure lookup: no counters, no fill.  The decoder's instruction
     * window uses it to pin the stream page and performs the
     * per-fetch tlbHits accounting itself.
     */
    Tlb::Entry *
    tlbLookup(VirtAddr va)
    {
        if (!fast_enabled_ || !regs_.mapen)
            return nullptr;
        return tlb_.lookup(va);
    }

    /**
     * Write-generation cell of the RAM page @p page_base points at
     * (a pointer previously obtained from instrPage() or a TLB
     * entry's hostPage, both of which are PhysicalMemory page bases).
     * The superblock cache latches this at build time and compares it
     * to detect stores into the block's own page.
     */
    std::uint32_t *
    pageGenForHostPage(const Byte *page_base)
    {
        return page_gen_base_ +
               (static_cast<PhysAddr>(page_base - ram_base_) >>
                kPageShift);
    }

    PhysicalMemory &memory() { return memory_; }

  private:
    /**
     * Walk the page tables for @p va.  Shared machinery beneath both
     * translate() and probe().  Never faults; returns a status.
     * @param fill_tlb true to install the result in the TLB.
     */
    ProbeResult walk(VirtAddr va, AccessType type, AccessMode mode,
                     bool fill_tlb);

    /**
     * The full translation including TLB fill, hardware M-set and the
     * failure-statistics updates, returning a status instead of
     * faulting.  translateSlow() is this plus raiseFault(); the
     * tryRead/tryWrite helpers use it directly so the VMM exit path
     * never throws.
     */
    MmStatus resolve(VirtAddr va, AccessType type, AccessMode mode,
                     PhysAddr *pa);

    /**
     * Raise the GuestFault corresponding to a walk failure.  Pure
     * throw: the per-fault statistics are counted by resolve().
     */
    [[noreturn]] void raiseFault(MmStatus status, VirtAddr va,
                                 AccessType type);

    // Reference path / fast-path fallbacks (mmu.cc).
    PhysAddr translateSlow(VirtAddr va, AccessType type, AccessMode mode);
    Byte readV8Slow(VirtAddr va, AccessMode mode);
    Word readV16Slow(VirtAddr va, AccessMode mode);
    Longword readV32Slow(VirtAddr va, AccessMode mode);
    void writeV8Slow(VirtAddr va, Byte value, AccessMode mode);
    void writeV16Slow(VirtAddr va, Word value, AccessMode mode);
    void writeV32Slow(VirtAddr va, Longword value, AccessMode mode);
    bool tryReadV32Slow(VirtAddr va, AccessMode mode, Longword *value,
                        MmStatus *status);
    bool tryWriteV32Slow(VirtAddr va, Longword value, AccessMode mode,
                         MmStatus *status);

    PhysicalMemory &memory_;
    const CostModel &cost_;
    Stats &stats_;
    MmuRegisters regs_;
    Tlb tlb_;
    bool modify_fault_mode_ = false;

    // Host fast path state (see class comment).
    bool fast_enabled_ = true;
    Byte *ram_base_ = nullptr;
    Longword ram_limit_ = 0;
    std::uint32_t *page_gen_base_ = nullptr; //!< per-page write counters
};

} // namespace vvax

#endif // VVAX_MEMORY_MMU_H
