/**
 * @file
 * Copy-on-write backing for golden-image forking (docs/ARCHITECTURE.md
 * §8): SealedRegion freezes a byte image into an immutable,
 * page-aligned region, and CowView gives each fork a private writable
 * view of it.
 *
 * On Linux the seal is a memfd with F_SEAL_SHRINK|GROW|WRITE applied
 * and the view is a MAP_PRIVATE mapping of it, so the host kernel
 * provides the copy-up: untouched pages stay physically shared across
 * every fork and a write faults in exactly one private host page.  On
 * hosts without memfd/mmap (or with VVAX_GOLDEN_EAGER=1 armed) both
 * fall back to plain heap copies behind the same API - forks still
 * work, they just pay O(image) instead of O(pages-touched).
 *
 * The one invariant both implementations keep is pointer stability:
 * data() never moves for the lifetime of the view, because TLB
 * entries, superblock records and threaded-tier programs all cache
 * raw host pointers into it (memory/physical_memory.h).
 */

#ifndef VVAX_MEMORY_COW_BACKING_H
#define VVAX_MEMORY_COW_BACKING_H

#include <cstddef>
#include <span>
#include <vector>

#include "arch/types.h"

namespace vvax {

/** How a fork's view of a sealed region is materialized. */
enum class CowBacking : Byte {
    Auto,      //!< kernel CoW when available, else eager copy
    KernelCow, //!< require MAP_PRIVATE of the sealed fd (throws if absent)
    EagerCopy, //!< force the full-copy fallback (testing, portability)
};

/** Host MMU page size - the granularity kernel copy-up works at.
 *  A VAX page (512 B) is smaller, so one host copy-up privatizes
 *  hostPageSize()/kPageSize VAX pages at once. */
std::size_t hostPageSize();

/**
 * Simulated host-resource failures (FaultClass::HostAlloc and the
 * sealing-failure tests): the next @p n memfd_create/mmap attempts
 * inside SealedRegion::seal / CowView::forkOf behave as if the host
 * call failed, exercising the documented heap/eager fallback without
 * needing a genuinely resource-starved host.  Setup-time only: the
 * counter is a plain global, not synchronized against concurrent
 * seals/forks.
 */
void setSimulatedHostAllocFailures(int n);
/** Failures still armed (0 when the hook is quiescent). */
int simulatedHostAllocFailuresRemaining();

/**
 * An immutable byte image.  Sealing copies the source bytes once;
 * afterwards nothing - not even this process - can change them
 * through the region, which is what makes handing the same region to
 * hundreds of forks safe.  Move-only (it may own an fd and a
 * mapping).
 */
class SealedRegion
{
  public:
    SealedRegion() = default;
    ~SealedRegion();
    SealedRegion(SealedRegion &&other) noexcept;
    SealedRegion &operator=(SealedRegion &&other) noexcept;
    SealedRegion(const SealedRegion &) = delete;
    SealedRegion &operator=(const SealedRegion &) = delete;

    /** Freeze a copy of @p bytes (memfd + seals, or heap fallback). */
    static SealedRegion seal(std::span<const Byte> bytes);

    bool valid() const { return data_ != nullptr; }
    std::size_t size() const { return size_; }
    /** Read-only view of the sealed bytes. */
    const Byte *data() const { return data_; }
    /** true when the region lives in a sealed memfd the kernel can
     *  CoW-map; false for the heap fallback. */
    bool kernelBacked() const { return fd_ >= 0; }
    int fd() const { return fd_; }

  private:
    void release();

    int fd_ = -1;
    const Byte *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t mapLen_ = 0;      //!< host-page-rounded mapping length
    std::vector<Byte> heap_;      //!< fallback storage
};

/**
 * A writable view of bytes: either plain owned storage (anonymous) or
 * a fork of a SealedRegion.  data() is stable for the lifetime of the
 * view.  Move-only.
 */
class CowView
{
  public:
    CowView() = default;
    ~CowView();
    CowView(CowView &&other) noexcept;
    CowView &operator=(CowView &&other) noexcept;
    CowView(const CowView &) = delete;
    CowView &operator=(const CowView &) = delete;

    /** Plain zero-filled owned storage (the non-forked case). */
    static CowView anonymous(std::size_t bytes);

    /**
     * A private view of @p base: MAP_PRIVATE of its fd under kernel
     * CoW, a full heap copy under the eager fallback.  Policy
     * CowBacking::Auto honours VVAX_GOLDEN_EAGER=1 and degrades to
     * the copy when the base is not kernel-backed;
     * CowBacking::KernelCow throws instead of degrading.
     */
    static CowView forkOf(const SealedRegion &base,
                          CowBacking policy = CowBacking::Auto);

    std::size_t size() const { return size_; }
    Byte *data() { return data_; }
    const Byte *data() const { return data_; }

    /** true when this view was created by forkOf. */
    bool forked() const { return forked_; }
    /** true when untouched pages are physically shared with the base
     *  (MAP_PRIVATE); false for anonymous and eager-copy views. */
    bool kernelCow() const { return kernelCow_; }

  private:
    void release();

    Byte *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t mapLen_ = 0;      //!< nonzero only when mmap-backed
    std::vector<Byte> heap_;      //!< anonymous / eager storage
    bool forked_ = false;
    bool kernelCow_ = false;
};

} // namespace vvax

#endif // VVAX_MEMORY_COW_BACKING_H
