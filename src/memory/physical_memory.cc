#include "memory/physical_memory.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "metrics/stats.h"

namespace vvax {

namespace {

Longword roundToVaxPage(Longword bytes)
{
    return (bytes + kPageSize - 1) & ~kPageOffsetMask;
}

} // namespace

PhysicalMemory::PhysicalMemory(Longword bytes)
{
    const Longword rounded = roundToVaxPage(bytes);
    ram_ = CowView::anonymous(rounded);
    ramData_ = ram_.data();
    page_gen_.resize(rounded / kPageSize, 0);
}

PhysicalMemory::PhysicalMemory(Longword bytes, const SealedRegion &base,
                               CowBacking backing)
{
    const Longword rounded = roundToVaxPage(bytes);
    if (base.size() != rounded)
        throw std::invalid_argument(
            "PhysicalMemory: sealed image size does not match RAM size");
    ram_ = CowView::forkOf(base, backing);
    ramData_ = ram_.data();
    page_gen_.resize(rounded / kPageSize, 0);
}

void
PhysicalMemory::addMmioWindow(PhysAddr base, Longword length,
                              MmioHandler *handler)
{
    assert(handler != nullptr);
    if (base < ramSize())
        throw std::invalid_argument("MMIO window overlaps RAM");
    for (const Window &w : windows_) {
        if (base < w.base + w.length && w.base < base + length)
            throw std::invalid_argument("MMIO windows overlap");
    }
    windows_.push_back(Window{base, length, handler});
}

const PhysicalMemory::Window *
PhysicalMemory::findWindow(PhysAddr pa) const
{
    for (const Window &w : windows_) {
        if (pa >= w.base && pa < w.base + w.length)
            return &w;
    }
    return nullptr;
}

bool
PhysicalMemory::exists(PhysAddr pa) const
{
    return pa < ramSize() || findWindow(pa) != nullptr;
}

Byte
PhysicalMemory::read8(PhysAddr pa)
{
    if (pa < ramSize())
        return ramData_[pa];
    const Window *w = findWindow(pa);
    assert(w);
    return static_cast<Byte>(w->handler->mmioRead(pa - w->base, 1));
}

Word
PhysicalMemory::read16(PhysAddr pa)
{
    if (pa + 1 < ramSize()) {
        Word value;
        std::memcpy(&value, ramData_ + pa, 2);
        return value;
    }
    const Window *w = findWindow(pa);
    assert(w);
    return static_cast<Word>(w->handler->mmioRead(pa - w->base, 2));
}

Longword
PhysicalMemory::read32(PhysAddr pa)
{
    if (pa + 3 < ramSize() && pa + 3 > pa) {
        Longword value;
        std::memcpy(&value, ramData_ + pa, 4);
        return value;
    }
    const Window *w = findWindow(pa);
    assert(w);
    return w->handler->mmioRead(pa - w->base, 4);
}

void
PhysicalMemory::write8(PhysAddr pa, Byte value)
{
    if (pa < ramSize()) {
        ramData_[pa] = value;
        page_gen_[pa >> kPageShift]++;
        return;
    }
    const Window *w = findWindow(pa);
    assert(w);
    w->handler->mmioWrite(pa - w->base, value, 1);
}

void
PhysicalMemory::write16(PhysAddr pa, Word value)
{
    if (pa + 1 < ramSize()) {
        std::memcpy(ramData_ + pa, &value, 2);
        page_gen_[pa >> kPageShift]++;
        page_gen_[(pa + 1) >> kPageShift]++;
        return;
    }
    const Window *w = findWindow(pa);
    assert(w);
    w->handler->mmioWrite(pa - w->base, value, 2);
}

void
PhysicalMemory::write32(PhysAddr pa, Longword value)
{
    if (pa + 3 < ramSize() && pa + 3 > pa) {
        std::memcpy(ramData_ + pa, &value, 4);
        page_gen_[pa >> kPageShift]++;
        page_gen_[(pa + 3) >> kPageShift]++;
        return;
    }
    const Window *w = findWindow(pa);
    assert(w);
    w->handler->mmioWrite(pa - w->base, value, 4);
}

void
PhysicalMemory::writeBlock(PhysAddr pa, std::span<const Byte> data)
{
    assert(pa + data.size() <= ramSize());
    std::memcpy(ramData_ + pa, data.data(), data.size());
    if (!data.empty()) {
        const PhysAddr first = pa >> kPageShift;
        const PhysAddr last = (pa + data.size() - 1) >> kPageShift;
        for (PhysAddr page = first; page <= last; ++page)
            page_gen_[page]++;
    }
}

void
PhysicalMemory::readBlock(PhysAddr pa, std::span<Byte> data)
{
    assert(pa + data.size() <= ramSize());
    std::memcpy(data.data(), ramData_ + pa, data.size());
}

CowStats
PhysicalMemory::cowStats() const
{
    CowStats cs;
    cs.forked = ram_.forked();
    cs.kernelCow = ram_.kernelCow();
    for (std::uint32_t gen : page_gen_)
        if (gen != 0)
            cs.pagesTouched++;
    if (!cs.kernelCow) {
        // Owned or eager-copied storage: everything is private.
        cs.privateBytes = ram_.size();
        cs.sharedBytes = 0;
        return cs;
    }
    // The kernel copies whole host pages; a host page is private as
    // soon as any VAX page inside it has been written.
    const std::size_t host_page = hostPageSize();
    const std::size_t vax_per_host =
        host_page >= kPageSize ? host_page / kPageSize : 1;
    std::size_t private_host_pages = 0;
    for (std::size_t i = 0; i < page_gen_.size(); i += vax_per_host) {
        const std::size_t end = std::min(i + vax_per_host, page_gen_.size());
        for (std::size_t j = i; j < end; ++j) {
            if (page_gen_[j] != 0) {
                private_host_pages++;
                break;
            }
        }
    }
    cs.privateBytes = private_host_pages * host_page;
    if (cs.privateBytes > ram_.size())
        cs.privateBytes = ram_.size();
    cs.sharedBytes = ram_.size() - cs.privateBytes;
    return cs;
}

void
PhysicalMemory::publishCowStats(Stats &stats) const
{
    const CowStats cs = cowStats();
    stats.cowForkedRam = cs.forked ? 1 : 0;
    stats.cowKernelBacked = cs.kernelCow ? 1 : 0;
    stats.cowPagesTouched = cs.pagesTouched;
    stats.cowPrivateBytes = cs.privateBytes;
    stats.cowSharedBytes = cs.sharedBytes;
}

} // namespace vvax
