#include "memory/physical_memory.h"

#include <cassert>
#include <stdexcept>

namespace vvax {

PhysicalMemory::PhysicalMemory(Longword bytes)
{
    const Longword rounded = (bytes + kPageSize - 1) & ~kPageOffsetMask;
    ram_.resize(rounded, 0);
    page_gen_.resize(rounded / kPageSize, 0);
}

void
PhysicalMemory::addMmioWindow(PhysAddr base, Longword length,
                              MmioHandler *handler)
{
    assert(handler != nullptr);
    if (base < ramSize())
        throw std::invalid_argument("MMIO window overlaps RAM");
    for (const Window &w : windows_) {
        if (base < w.base + w.length && w.base < base + length)
            throw std::invalid_argument("MMIO windows overlap");
    }
    windows_.push_back(Window{base, length, handler});
}

const PhysicalMemory::Window *
PhysicalMemory::findWindow(PhysAddr pa) const
{
    for (const Window &w : windows_) {
        if (pa >= w.base && pa < w.base + w.length)
            return &w;
    }
    return nullptr;
}

bool
PhysicalMemory::exists(PhysAddr pa) const
{
    return pa < ramSize() || findWindow(pa) != nullptr;
}

Byte
PhysicalMemory::read8(PhysAddr pa)
{
    if (pa < ramSize())
        return ram_[pa];
    const Window *w = findWindow(pa);
    assert(w);
    return static_cast<Byte>(w->handler->mmioRead(pa - w->base, 1));
}

Word
PhysicalMemory::read16(PhysAddr pa)
{
    if (pa + 1 < ramSize()) {
        Word value;
        std::memcpy(&value, &ram_[pa], 2);
        return value;
    }
    const Window *w = findWindow(pa);
    assert(w);
    return static_cast<Word>(w->handler->mmioRead(pa - w->base, 2));
}

Longword
PhysicalMemory::read32(PhysAddr pa)
{
    if (pa + 3 < ramSize() && pa + 3 > pa) {
        Longword value;
        std::memcpy(&value, &ram_[pa], 4);
        return value;
    }
    const Window *w = findWindow(pa);
    assert(w);
    return w->handler->mmioRead(pa - w->base, 4);
}

void
PhysicalMemory::write8(PhysAddr pa, Byte value)
{
    if (pa < ramSize()) {
        ram_[pa] = value;
        page_gen_[pa >> kPageShift]++;
        return;
    }
    const Window *w = findWindow(pa);
    assert(w);
    w->handler->mmioWrite(pa - w->base, value, 1);
}

void
PhysicalMemory::write16(PhysAddr pa, Word value)
{
    if (pa + 1 < ramSize()) {
        std::memcpy(&ram_[pa], &value, 2);
        page_gen_[pa >> kPageShift]++;
        page_gen_[(pa + 1) >> kPageShift]++;
        return;
    }
    const Window *w = findWindow(pa);
    assert(w);
    w->handler->mmioWrite(pa - w->base, value, 2);
}

void
PhysicalMemory::write32(PhysAddr pa, Longword value)
{
    if (pa + 3 < ramSize() && pa + 3 > pa) {
        std::memcpy(&ram_[pa], &value, 4);
        page_gen_[pa >> kPageShift]++;
        page_gen_[(pa + 3) >> kPageShift]++;
        return;
    }
    const Window *w = findWindow(pa);
    assert(w);
    w->handler->mmioWrite(pa - w->base, value, 4);
}

void
PhysicalMemory::writeBlock(PhysAddr pa, std::span<const Byte> data)
{
    assert(pa + data.size() <= ramSize());
    std::memcpy(&ram_[pa], data.data(), data.size());
    if (!data.empty()) {
        const PhysAddr first = pa >> kPageShift;
        const PhysAddr last = (pa + data.size() - 1) >> kPageShift;
        for (PhysAddr page = first; page <= last; ++page)
            page_gen_[page]++;
    }
}

void
PhysicalMemory::readBlock(PhysAddr pa, std::span<Byte> data)
{
    assert(pa + data.size() <= ramSize());
    std::memcpy(data.data(), &ram_[pa], data.size());
}

} // namespace vvax
