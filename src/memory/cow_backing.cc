#include "memory/cow_backing.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace vvax {

std::size_t hostPageSize()
{
#if defined(__unix__) || defined(__APPLE__)
    static const std::size_t size = [] {
        long page = sysconf(_SC_PAGESIZE);
        return page > 0 ? static_cast<std::size_t>(page) : std::size_t{4096};
    }();
    return size;
#else
    return 4096;
#endif
}

namespace {

std::size_t roundToHostPage(std::size_t bytes)
{
    const std::size_t page = hostPageSize();
    return (bytes + page - 1) / page * page;
}

bool eagerForced()
{
    const char *env = std::getenv("VVAX_GOLDEN_EAGER");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

int simulated_host_alloc_failures = 0;

/** Consume one armed simulated failure, if any. */
bool claimSimulatedHostAllocFailure()
{
    if (simulated_host_alloc_failures <= 0)
        return false;
    simulated_host_alloc_failures--;
    return true;
}

} // namespace

void setSimulatedHostAllocFailures(int n)
{
    simulated_host_alloc_failures = n;
}

int simulatedHostAllocFailuresRemaining()
{
    return simulated_host_alloc_failures;
}

// ---------------------------------------------------------------- SealedRegion

SealedRegion::~SealedRegion()
{
    release();
}

SealedRegion::SealedRegion(SealedRegion &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapLen_(std::exchange(other.mapLen_, 0)),
      heap_(std::move(other.heap_))
{
}

SealedRegion &SealedRegion::operator=(SealedRegion &&other) noexcept
{
    if (this != &other) {
        release();
        fd_ = std::exchange(other.fd_, -1);
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
        mapLen_ = std::exchange(other.mapLen_, 0);
        heap_ = std::move(other.heap_);
    }
    return *this;
}

void SealedRegion::release()
{
#if defined(__linux__)
    if (mapLen_ != 0 && data_ != nullptr)
        ::munmap(const_cast<Byte *>(data_), mapLen_);
    if (fd_ >= 0)
        ::close(fd_);
#endif
    fd_ = -1;
    data_ = nullptr;
    size_ = 0;
    mapLen_ = 0;
    heap_.clear();
}

SealedRegion SealedRegion::seal(std::span<const Byte> bytes)
{
    SealedRegion region;
    region.size_ = bytes.size();

#if defined(__linux__)
    int fd = claimSimulatedHostAllocFailure()
                 ? -1
                 : static_cast<int>(::syscall(
                       SYS_memfd_create, "vvax-golden",
                       MFD_CLOEXEC | MFD_ALLOW_SEALING));
    if (fd >= 0) {
        bool ok = true;
        std::size_t written = 0;
        while (ok && written < bytes.size()) {
            ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
            if (n <= 0)
                ok = false;
            else
                written += static_cast<std::size_t>(n);
        }
        // F_SEAL_WRITE is legal here because no shared writable mapping
        // of the fd exists; MAP_PRIVATE mappings stay allowed after it.
        if (ok && ::fcntl(fd, F_ADD_SEALS,
                          F_SEAL_SHRINK | F_SEAL_GROW | F_SEAL_WRITE) != 0)
            ok = false;
        if (ok) {
            region.mapLen_ = roundToHostPage(bytes.size());
            if (region.mapLen_ == 0)
                region.mapLen_ = hostPageSize();
            void *map = ::mmap(nullptr, region.mapLen_, PROT_READ, MAP_SHARED,
                               fd, 0);
            if (map != MAP_FAILED) {
                region.fd_ = fd;
                region.data_ = static_cast<const Byte *>(map);
                return region;
            }
            region.mapLen_ = 0;
        }
        ::close(fd);
    }
#endif

    // Heap fallback: still immutable by convention (only const access
    // escapes), but forks of it must eager-copy.
    region.heap_.assign(bytes.begin(), bytes.end());
    region.data_ = region.heap_.data();
    return region;
}

// --------------------------------------------------------------------- CowView

CowView::~CowView()
{
    release();
}

CowView::CowView(CowView &&other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapLen_(std::exchange(other.mapLen_, 0)),
      heap_(std::move(other.heap_)),
      forked_(std::exchange(other.forked_, false)),
      kernelCow_(std::exchange(other.kernelCow_, false))
{
}

CowView &CowView::operator=(CowView &&other) noexcept
{
    if (this != &other) {
        release();
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
        mapLen_ = std::exchange(other.mapLen_, 0);
        heap_ = std::move(other.heap_);
        forked_ = std::exchange(other.forked_, false);
        kernelCow_ = std::exchange(other.kernelCow_, false);
    }
    return *this;
}

void CowView::release()
{
#if defined(__linux__)
    if (mapLen_ != 0 && data_ != nullptr)
        ::munmap(data_, mapLen_);
#endif
    data_ = nullptr;
    size_ = 0;
    mapLen_ = 0;
    heap_.clear();
    forked_ = false;
    kernelCow_ = false;
}

CowView CowView::anonymous(std::size_t bytes)
{
    CowView view;
    view.heap_.resize(bytes); // value-init: RAM powers on zeroed
    view.data_ = view.heap_.data();
    view.size_ = bytes;
    return view;
}

CowView CowView::forkOf(const SealedRegion &base, CowBacking policy)
{
    if (!base.valid())
        throw std::invalid_argument("CowView::forkOf: base region not sealed");

    const bool want_kernel =
        policy == CowBacking::KernelCow ||
        (policy == CowBacking::Auto && !eagerForced());

    CowView view;
    view.size_ = base.size();
    view.forked_ = true;

#if defined(__linux__)
    if (want_kernel && base.kernelBacked() &&
        !claimSimulatedHostAllocFailure()) {
        std::size_t map_len = roundToHostPage(base.size());
        if (map_len == 0)
            map_len = hostPageSize();
        void *map = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE, base.fd(), 0);
        if (map != MAP_FAILED) {
            view.data_ = static_cast<Byte *>(map);
            view.mapLen_ = map_len;
            view.kernelCow_ = true;
            return view;
        }
    }
#endif
    if (policy == CowBacking::KernelCow)
        throw std::runtime_error(
            "CowView::forkOf: kernel CoW backing unavailable on this host");

    view.heap_.assign(base.data(), base.data() + base.size());
    view.data_ = view.heap_.data();
    return view;
}

} // namespace vvax
