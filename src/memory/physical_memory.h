/**
 * @file
 * Physical address space: RAM plus memory-mapped I/O windows.
 *
 * RAM occupies physical addresses [0, size).  Devices may claim
 * aligned windows anywhere above RAM (the typical VAX arrangement puts
 * I/O space at the top of the physical address space).  References to
 * addresses backed by neither RAM nor a device window report
 * non-existent memory, which the CPU turns into a machine check (and
 * which the VMM turns into a VM halt, Section 5 of the paper).
 *
 * RAM backing is a policy (CowView): a machine either owns plain
 * zero-filled storage or is forked from a sealed golden image, in
 * which case the host kernel copy-on-writes pages beneath a fixed
 * MAP_PRIVATE mapping (docs/ARCHITECTURE.md §8).  Either way the
 * contract callers rely on is *pointer stability*, not allocation
 * strategy: the host address of every RAM byte is fixed for the life
 * of the machine.
 */

#ifndef VVAX_MEMORY_PHYSICAL_MEMORY_H
#define VVAX_MEMORY_PHYSICAL_MEMORY_H

#include <cstring>
#include <span>
#include <vector>

#include "arch/types.h"
#include "memory/cow_backing.h"

namespace vvax {

struct Stats;

/** Interface for memory-mapped device registers. */
class MmioHandler
{
  public:
    virtual ~MmioHandler() = default;
    /** Read @p size (1/2/4) bytes at @p offset within the window. */
    virtual Longword mmioRead(PhysAddr offset, int size) = 0;
    /** Write @p size (1/2/4) bytes at @p offset within the window. */
    virtual void mmioWrite(PhysAddr offset, Longword value, int size) = 0;
};

/**
 * Copy-on-write residency of a forked machine's RAM, computed from
 * the per-page write-generation counters: because *every* store
 * funnel bumps its page's counter and forks start with the counters
 * zeroed, a nonzero counter is an exact "written since fork" bit.
 * Private bytes are rounded up to host pages — the granularity the
 * kernel actually copies at.  For non-forked or eager-copy machines
 * all resident bytes are private and sharedBytes is 0.
 */
struct CowStats
{
    bool forked = false;        //!< RAM is a fork of a sealed image
    bool kernelCow = false;     //!< untouched pages physically shared
    Longword pagesTouched = 0;  //!< VAX pages written since the fork
    std::uint64_t privateBytes = 0; //!< host-page-rounded private bytes
    std::uint64_t sharedBytes = 0;  //!< bytes still shared with the image
};

class PhysicalMemory
{
  public:
    /** @param bytes RAM size; rounded up to a whole page.  Plain
     *  zero-filled backing (the non-forked case). */
    explicit PhysicalMemory(Longword bytes);

    /**
     * Fork constructor: RAM starts as a private CoW view of @p base
     * (which must be exactly the rounded size).  Page-generation
     * counters start fresh at zero — the forked machine's SMC
     * detection and CoW accounting begin at the fork point, identical
     * no matter how many siblings exist or in what order they forked.
     */
    PhysicalMemory(Longword bytes, const SealedRegion &base,
                   CowBacking backing = CowBacking::Auto);

    Longword ramSize() const { return static_cast<Longword>(ram_.size()); }
    Longword ramPages() const { return ramSize() / kPageSize; }

    /** Claim [base, base+length) for @p handler.  Must not overlap RAM. */
    void addMmioWindow(PhysAddr base, Longword length, MmioHandler *handler);

    /** @return true if @p pa is backed by RAM or a device window. */
    bool exists(PhysAddr pa) const;
    /** @return true if the whole page containing @p pa is RAM. */
    bool isRam(PhysAddr pa) const { return pa < ramSize(); }

    /**
     * Host pointer to the start of the RAM page containing @p pa, or
     * nullptr when the page is not entirely RAM-backed (MMIO,
     * non-existent).  The backing (owned storage or a CoW fork of a
     * golden image) never remaps, so the pointer remains valid for
     * the life of the machine: under kernel CoW the *mapping address*
     * is fixed and the kernel swaps physical pages beneath it on
     * first write.  TLB entries, superblock records and threaded-tier
     * programs all cache these pointers.
     */
    Byte *
    pageBase(PhysAddr pa)
    {
        const PhysAddr page = pa & ~kPageOffsetMask;
        if (static_cast<std::uint64_t>(page) + kPageSize <= ramSize())
            return ramData_ + page;
        return nullptr;
    }

    /**
     * Host pointer to the write-generation counter of the RAM page
     * containing @p pa, or nullptr when pageBase() would be null.
     * Every store funnel (write8/16/32, writeBlock, the MMU's inline
     * fast paths) bumps the counter of each page it touches; the
     * superblock executor compares it to detect stores into the page
     * its instructions came from (docs/ARCHITECTURE.md §5a), and
     * cowStats() reads `counter != 0` as "page written since fork".
     * Like RAM pages the counter addresses are stable for the life of
     * the machine; forked machines start them at zero.
     */
    std::uint32_t *
    pageGenCell(PhysAddr pa)
    {
        const PhysAddr page = pa & ~kPageOffsetMask;
        if (static_cast<std::uint64_t>(page) + kPageSize <= ramSize())
            return page_gen_.data() + (page >> kPageShift);
        return nullptr;
    }

    /** The whole generation array, indexed by page frame number. */
    std::uint32_t *pageGenData() { return page_gen_.data(); }

    // Accessors.  Out-of-range RAM access with no window is reported
    // by exists(); callers (the MMU) check first.  These assert.
    Byte read8(PhysAddr pa);
    Word read16(PhysAddr pa);
    Longword read32(PhysAddr pa);
    void write8(PhysAddr pa, Byte value);
    void write16(PhysAddr pa, Word value);
    void write32(PhysAddr pa, Longword value);

    /** Bulk copy helpers for loaders and DMA. */
    void writeBlock(PhysAddr pa, std::span<const Byte> data);
    void readBlock(PhysAddr pa, std::span<Byte> data);

    /** Direct RAM view (loaders, the VMM's VM-physical map). */
    std::span<Byte> ram() { return {ramData_, ram_.size()}; }

    /** true when this RAM is a CoW fork of a sealed image. */
    bool forkedFromImage() const { return ram_.forked(); }
    /** true when untouched pages are physically shared with the image. */
    bool kernelCowActive() const { return ram_.kernelCow(); }

    /** Current CoW residency snapshot (O(ramPages) scan). */
    CowStats cowStats() const;
    /** Copy cowStats() into the cow* gauge fields of @p stats. */
    void publishCowStats(Stats &stats) const;

  private:
    struct Window
    {
        PhysAddr base;
        Longword length;
        MmioHandler *handler;
    };

    const Window *findWindow(PhysAddr pa) const;

    CowView ram_;                         //!< backing policy (see @file)
    Byte *ramData_ = nullptr;             //!< == ram_.data(); hot-path copy
    std::vector<std::uint32_t> page_gen_; //!< per-page write counter
    std::vector<Window> windows_;
};

} // namespace vvax

#endif // VVAX_MEMORY_PHYSICAL_MEMORY_H
