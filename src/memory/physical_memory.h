/**
 * @file
 * Physical address space: RAM plus memory-mapped I/O windows.
 *
 * RAM occupies physical addresses [0, size).  Devices may claim
 * aligned windows anywhere above RAM (the typical VAX arrangement puts
 * I/O space at the top of the physical address space).  References to
 * addresses backed by neither RAM nor a device window report
 * non-existent memory, which the CPU turns into a machine check (and
 * which the VMM turns into a VM halt, Section 5 of the paper).
 */

#ifndef VVAX_MEMORY_PHYSICAL_MEMORY_H
#define VVAX_MEMORY_PHYSICAL_MEMORY_H

#include <cstring>
#include <span>
#include <vector>

#include "arch/types.h"

namespace vvax {

/** Interface for memory-mapped device registers. */
class MmioHandler
{
  public:
    virtual ~MmioHandler() = default;
    /** Read @p size (1/2/4) bytes at @p offset within the window. */
    virtual Longword mmioRead(PhysAddr offset, int size) = 0;
    /** Write @p size (1/2/4) bytes at @p offset within the window. */
    virtual void mmioWrite(PhysAddr offset, Longword value, int size) = 0;
};

class PhysicalMemory
{
  public:
    /** @param bytes RAM size; rounded up to a whole page. */
    explicit PhysicalMemory(Longword bytes);

    Longword ramSize() const { return static_cast<Longword>(ram_.size()); }
    Longword ramPages() const { return ramSize() / kPageSize; }

    /** Claim [base, base+length) for @p handler.  Must not overlap RAM. */
    void addMmioWindow(PhysAddr base, Longword length, MmioHandler *handler);

    /** @return true if @p pa is backed by RAM or a device window. */
    bool exists(PhysAddr pa) const;
    /** @return true if the whole page containing @p pa is RAM. */
    bool isRam(PhysAddr pa) const { return pa < ramSize(); }

    /**
     * Host pointer to the start of the RAM page containing @p pa, or
     * nullptr when the page is not entirely RAM-backed (MMIO,
     * non-existent).  RAM is allocated once at construction, so the
     * pointer remains valid for the life of the machine.
     */
    Byte *
    pageBase(PhysAddr pa)
    {
        const PhysAddr page = pa & ~kPageOffsetMask;
        if (static_cast<std::uint64_t>(page) + kPageSize <= ramSize())
            return ram_.data() + page;
        return nullptr;
    }

    /**
     * Host pointer to the write-generation counter of the RAM page
     * containing @p pa, or nullptr when pageBase() would be null.
     * Every store funnel (write8/16/32, writeBlock, the MMU's inline
     * fast paths) bumps the counter of each page it touches; the
     * superblock executor compares it to detect stores into the page
     * its instructions came from (docs/ARCHITECTURE.md §5a).  Like
     * RAM itself the counters are allocated once at construction.
     */
    std::uint32_t *
    pageGenCell(PhysAddr pa)
    {
        const PhysAddr page = pa & ~kPageOffsetMask;
        if (static_cast<std::uint64_t>(page) + kPageSize <= ramSize())
            return page_gen_.data() + (page >> kPageShift);
        return nullptr;
    }

    /** The whole generation array, indexed by page frame number. */
    std::uint32_t *pageGenData() { return page_gen_.data(); }

    // Accessors.  Out-of-range RAM access with no window is reported
    // by exists(); callers (the MMU) check first.  These assert.
    Byte read8(PhysAddr pa);
    Word read16(PhysAddr pa);
    Longword read32(PhysAddr pa);
    void write8(PhysAddr pa, Byte value);
    void write16(PhysAddr pa, Word value);
    void write32(PhysAddr pa, Longword value);

    /** Bulk copy helpers for loaders and DMA. */
    void writeBlock(PhysAddr pa, std::span<const Byte> data);
    void readBlock(PhysAddr pa, std::span<Byte> data);

    /** Direct RAM view (loaders, the VMM's VM-physical map). */
    std::span<Byte> ram() { return ram_; }

  private:
    struct Window
    {
        PhysAddr base;
        Longword length;
        MmioHandler *handler;
    };

    const Window *findWindow(PhysAddr pa) const;

    std::vector<Byte> ram_;
    std::vector<std::uint32_t> page_gen_; //!< per-page write counter
    std::vector<Window> windows_;
};

} // namespace vvax

#endif // VVAX_MEMORY_PHYSICAL_MEMORY_H
