/**
 * @file
 * Small self-contained guest kernels targeting specific VMM hot
 * paths.  Both the equivalence tests and the throughput benchmarks
 * run these, so the trap mix each one generates is measured (bench)
 * and lockstep-verified (fast path vs reference path) from the same
 * image.
 */

#ifndef VVAX_GUEST_MICROGUESTS_H
#define VVAX_GUEST_MICROGUESTS_H

#include <vector>

#include "arch/types.h"

namespace vvax {

/** A built microguest: load at (VM-)physical @ref loadBase. */
struct MicroGuestImage
{
    std::vector<Byte> image;
    VirtAddr loadBase = 0;
    VirtAddr entry = 0;
};

/**
 * Trap-dense kernel loop: every iteration executes two MTPR IPLs, an
 * MFPR IPL and a PROBER, so a virtualized run takes four emulation
 * traps per iteration (the paper's Table 3 privileged-instruction
 * profile).  Runs with mapping off; IPL never drops below 30, so the
 * instruction stream is identical bare and virtualized.
 */
MicroGuestImage buildTrapDenseLoop(Longword iterations);

/**
 * Context-switch-dense kernel: builds an identity page table over the
 * low 64 KB, turns mapping on, then ping-pongs between two processes
 * with MTPR PCBB + LDPCTX + REI per switch (two full switches per
 * iteration).  The loop counter lives in memory because LDPCTX
 * replaces the register file.  Virtualized, this hammers the shadow
 * slot cache and the tagged-TLB world-switch path.
 */
MicroGuestImage buildContextSwitchLoop(Longword iterations);

/**
 * Self-modifying kernel loop: each iteration rewrites the
 * short-literal specifier byte of an ADDL2 that has already executed
 * (toggling the addend between 1 and 2), then runs the patched
 * instruction.  With @p cross_page the patched instruction sits on
 * the page after the store, so the write invalidates a *different*
 * page's translations; otherwise the store mutates the very run of
 * code it executes from.  Exercises icache/superblock invalidation on
 * the fast path - the reference interpreter re-fetches every byte, so
 * lockstep runs prove the caches never serve stale code.
 */
MicroGuestImage buildSmcPatchLoop(Longword iterations, bool cross_page);

/** Passes between displacement rewrites in the branch-patch guest. */
constexpr Longword kBranchPatchPeriod = 16;

/**
 * Self-modifying *branch* loop for the trace tier: every
 * @ref kBranchPatchPeriod passes the guest rewrites the displacement
 * byte of a BRB in a different superblock (the hot path
 * loop -> mid -> door -> t1/t2 -> loop links up during the quiet
 * passes), flipping the branch between its two arms.  The store
 * dirties the page generation of a linked trace member, so on the
 * fast path each flip must sever the inbound links and the trace
 * re-forms before the next flip.  With @p cross_page the patched
 * branch sits on the page after the store.  The reference
 * interpreter re-fetches every byte, so lockstep runs prove link
 * crossings never execute stale code.  Terminal state:
 * R0 = 4*iterations, R1 = branchPatchExpectedR1(iterations), R6 = 0.
 */
MicroGuestImage buildBranchPatchLoop(Longword iterations,
                                     bool cross_page);

/** Architectural R1 after @p iterations of the branch-patch loop. */
Longword branchPatchExpectedR1(Longword iterations);

/** Descriptors per kDiskBatch ring posted by the I/O-dense guest. */
constexpr Longword kIoDenseDescriptors = 16;

/**
 * I/O-dense kernel loop: every iteration writes a four-character
 * console burst through TXDB and moves @ref kIoDenseDescriptors
 * single-block disk transfers (eight writes, then eight reads of the
 * written blocks).  With @p use_disk_kcall the boot path probes the
 * VMM's KCALL feature mask: a VMM advertising kFeatureDiskBatch gets
 * the whole descriptor ring in ONE kDiskBatch exit per iteration,
 * anything else gets one kDiskRead/kDiskWrite KCALL per descriptor —
 * the same transfers in the same order, so disk contents and console
 * bytes are identical either way.  Without @p use_disk_kcall the loop
 * is console+ALU only and runs bare (no KCALL register needed).
 */
MicroGuestImage buildIoDenseLoop(Longword iterations,
                                 bool use_disk_kcall);

} // namespace vvax

#endif // VVAX_GUEST_MICROGUESTS_H
