/**
 * @file
 * MiniVMS: a VMS-like guest operating system for the simulated VAX,
 * written in VAX machine code via the repository's CodeBuilder.
 *
 * MiniVMS exists to exercise everything the paper's analysis is
 * about, the way VMS does (Section 1's goal that standard VAX
 * operating systems run unchanged):
 *
 *  - it uses all four access modes: user programs, a supervisor-mode
 *    CLI service (CHMS), an executive-mode record service (CHME) and
 *    kernel-mode system services (CHMK);
 *  - it runs with memory management enabled: an SPT, per-process
 *    P0/P1 page tables, per-mode stacks in P1;
 *  - it context-switches with SVPCTX/LDPCTX off a timer interrupt and
 *    a rescheduling software interrupt, raising and lowering IPL with
 *    MTPR-to-IPL on every system service (the Section 7.3 hot path);
 *  - it validates user buffers with PROBER/PROBEW before touching
 *    them from privileged modes;
 *  - it detects whether it is running on a virtual VAX (MFPR from
 *    MEMSIZE succeeds there and takes a reserved operand fault on the
 *    bare machine) and then uses the virtual VAX's facilities: KCALL
 *    start-I/O, the VMM-maintained uptime cell, and WAIT when idle -
 *    exactly the small set of adaptations Section 5 expects of a
 *    VMOS on a new VAX family member;
 *  - its disk driver degrades gracefully under device errors: a
 *    failed kDiskBatch ring falls back to per-block transfers, each
 *    transfer retries with backoff before surfacing a console
 *    diagnostic, and a machine-check handler logs and survives the
 *    VMM's reflected ECC events.
 *
 * The same image boots on a bare standard VAX, a bare modified VAX
 * (where it services modify faults itself) and inside a virtual
 * machine.
 */

#ifndef VVAX_GUEST_MINIVMS_H
#define VVAX_GUEST_MINIVMS_H

#include <vector>

#include "arch/types.h"

namespace vvax {

/** Per-process workload programs (the Section 7.3 benchmark mix). */
enum class Workload : Byte {
    Compute,     //!< register/ALU loop, light memory traffic
    Edit,        //!< interactive editing: string moves, console output
    Transaction, //!< record service + disk I/O + index updates
    PageStress,  //!< touches many pages per quantum (shadow-fill heavy)
    Idle,        //!< hibernates (WAIT handshake on a virtual VAX)
};

struct MiniVmsConfig
{
    Longword memBytes = 1024 * 1024;
    int numProcesses = 4;
    /** Workload per process; cycled when shorter than numProcesses;
     *  an empty list means every process runs Compute. */
    std::vector<Workload> workloads = defaultWorkloads();

    static std::vector<Workload>
    defaultWorkloads()
    {
        return {Workload::Edit, Workload::Transaction};
    }
    /** Iterations each process performs before exiting. */
    Longword iterations = 16;
    /** Guest scheduling quantum in cycles (interval timer period). */
    Longword quantumCycles = 30000;
    /** Pages of private data per process (working set size). */
    Longword dataPagesPerProcess = 20;
    /**
     * Disk access method: 0 means use KCALL start-I/O when running
     * virtual (and the machine's memory-mapped controller when bare);
     * a non-zero PFN forces the memory-mapped driver at that frame
     * (used for the Section 4.4.3 ablation inside a VM).
     */
    Pfn diskCsrPfn = 0;
    /** Emit per-iteration console output (noisy but realistic). */
    bool chattyConsole = false;
};

/** Built boot image plus the addresses the host needs. */
struct MiniVmsImage
{
    std::vector<Byte> image; //!< load at (VM-)physical address 0
    VirtAddr entry = 0;      //!< boot entry point (physical)
    /**
     * Result area (physical): +0 magic 0x600D600D when all processes
     * exited, +4 clock ticks observed, +8 completed process count,
     * +12 total system service calls, +16 disk retries the driver
     * performed, +20 machine checks survived.
     */
    PhysAddr resultBase = 0;
    static constexpr Longword kResultMagic = 0x600D600D;
};

/** Assemble a MiniVMS system for @p config. */
MiniVmsImage buildMiniVms(const MiniVmsConfig &config);

} // namespace vvax

#endif // VVAX_GUEST_MINIVMS_H
