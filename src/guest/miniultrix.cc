/**
 * @file
 * MiniUltrix builder: a deliberately small two-mode (kernel/user)
 * guest.  Same construction style as MiniVMS - fully static layout,
 * kernel assembled with CodeBuilder, tables poked into the image.
 */

#include "guest/miniultrix.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "arch/ipr.h"
#include "arch/protection.h"
#include "arch/psl.h"
#include "arch/pte.h"
#include "arch/scb.h"
#include "vasm/code_builder.h"
#include "vmm/kcall.h"

namespace vvax {

namespace {

constexpr Longword kS = kSystemBase;
constexpr VirtAddr kUserCodeVa = 0x1000;
constexpr Longword kUserCodePages = 4;
constexpr VirtAddr kUserDataVa = 0x8000;
constexpr Longword kP1Vpns = 0x200000;
constexpr Longword kUserStackPages = 4;
constexpr Longword kKernStackPages = 2;

void
pokeL(std::vector<Byte> &image, PhysAddr pa, Longword value)
{
    assert(pa + 4 <= image.size());
    std::memcpy(&image[pa], &value, 4);
}

// System call numbers.
constexpr Byte kSysExit = 0;
constexpr Byte kSysPutc = 1;
constexpr Byte kSysGetPid = 2;
constexpr Byte kSysDiskRead = 3; //!< R2 = block; one block, kernel buffer

/** Console staging buffer: one kConsoleWrite exit per this many chars. */
constexpr Longword kConBufBytes = 64;

std::vector<Byte>
buildUserProgram(const MiniUltrixConfig &cfg)
{
    CodeBuilder b(kUserCodeVa);
    Label outer = b.newLabel();
    Label touch = b.newLabel();
    b.chmk(Op::lit(kSysGetPid)); // R0 = pid
    b.addl3(Op::imm('a'), Op::reg(R0), Op::reg(R9)); // tag character
    if (cfg.diskReadsPerProcess > 0) {
        // Warm-up disk reads through the kernel-buffer syscall (only
        // useful inside a VM; the kernel answers -1 on bare hardware).
        Label dloop = b.newLabel();
        b.movl(Op::imm(cfg.diskReadsPerProcess), Op::reg(R10));
        b.bind(dloop);
        b.movl(Op::reg(R10), Op::reg(R2));
        b.bicl2(Op::imm(~63u), Op::reg(R2)); // stay in the first 64 blocks
        b.chmk(Op::lit(kSysDiskRead));
        b.sobgtr(Op::reg(R10), dloop);
    }
    b.movl(Op::imm(cfg.iterations), Op::reg(R11));
    b.bind(outer);
    // Some computation.
    b.movl(Op::reg(R11), Op::reg(R7));
    b.mull2(Op::lit(17), Op::reg(R7));
    b.xorl2(Op::imm(0x5A5A), Op::reg(R7));
    // Touch the data pages (writes: modify faults / shadow fills).
    b.movl(Op::imm(cfg.dataPagesPerProcess), Op::reg(R6));
    b.movl(Op::imm(kUserDataVa), Op::reg(R8));
    b.bind(touch);
    b.movl(Op::reg(R7), Op::deferred(R8));
    b.addl2(Op::imm(kPageSize), Op::reg(R8));
    b.sobgtr(Op::reg(R6), touch);
    // Say something.
    b.movl(Op::reg(R9), Op::reg(R2));
    b.chmk(Op::lit(kSysPutc));
    b.sobgtr(Op::reg(R11), outer);
    b.chmk(Op::lit(kSysExit));
    auto image = b.finish();
    if (image.size() > kUserCodePages * kPageSize)
        throw std::logic_error("MiniUltrix user program too large");
    return image;
}

} // namespace

MiniUltrixImage
buildMiniUltrix(const MiniUltrixConfig &cfg)
{
    const Longword mem_pages = (cfg.memBytes + kPageSize - 1) / kPageSize;
    const int nproc = cfg.numProcesses;
    if (nproc < 1 || nproc > 16)
        throw std::invalid_argument("numProcesses out of range");

    // --- Page plan ---
    constexpr Longword kKernelTextPages = 40;
    Longword cursor = kKernelTextPages;
    auto alloc = [&](Longword pages) {
        const Longword start = cursor;
        cursor += pages;
        return static_cast<PhysAddr>(start * kPageSize);
    };
    const PhysAddr boot_p0 = alloc(1);
    const PhysAddr boot_stack = alloc(1);
    const PhysAddr int_stack = alloc(1);
    const Longword spt_pages = (mem_pages * 4 + kPageSize - 1) / kPageSize;
    const PhysAddr spt = alloc(spt_pages);
    const PhysAddr user_prog = alloc(kUserCodePages);

    struct Proc
    {
        PhysAddr pcb, p0Table, p1Table, data, stacks;
    };
    const Longword p0_ptes =
        (kUserDataVa >> kPageShift) + cfg.dataPagesPerProcess;
    const Longword p0_table_pages =
        (p0_ptes * 4 + kPageSize - 1) / kPageSize;
    std::vector<Proc> procs(nproc);
    for (auto &p : procs) {
        p.pcb = alloc(1);
        p.p0Table = alloc(p0_table_pages);
        p.p1Table = alloc(2); // 256 PTEs
        p.data = alloc(cfg.dataPagesPerProcess);
        p.stacks = alloc(kUserStackPages + kKernStackPages);
    }
    if (cursor > mem_pages)
        throw std::invalid_argument("MiniUltrix does not fit");

    // --- Kernel ---
    CodeBuilder b(0);
    const Label entry = b.newLabel();
    const Label in_s = b.newLabel();
    const Label h_chmk = b.newLabel();
    const Label h_timer = b.newLabel();
    const Label h_resched = b.newLabel();
    const Label h_modify = b.newLabel();
    const Label h_panic = b.newLabel();
    const Label h_ignore = b.newLabel();
    const Label h_resop = b.newLabel();
    const Label h_mcheck = b.newLabel();
    const Label resume_detect = b.newLabel();
    const Label con_flush = b.newLabel();
    const Label pick_next = b.newLabel();
    const Label finale = b.newLabel();
    const Label d_isvirt = b.newLabel();
    const Label d_probing = b.newLabel();
    const Label d_conlen = b.newLabel();
    const Label d_conbuf = b.newLabel();
    const Label d_ticks = b.newLabel();
    const Label d_live = b.newLabel();
    const Label d_cur = b.newLabel();
    const Label d_sys = b.newLabel();
    const Label d_retries = b.newLabel();
    const Label d_mchecks = b.newLabel();
    const Label d_diskbuf = b.newLabel();
    const Label d_result = b.newLabel();
    const Label d_pcbs = b.newLabel();
    const Label d_done = b.newLabel();

    auto cell = [&](Label l) { return Op::absRef(l, kS); };
    auto beqlFar = [&](Label target) {
        Label skip = b.newLabel();
        b.bneq(skip);
        b.brw(target);
        b.bind(skip);
    };
    auto bneqFar = [&](Label target) {
        Label skip = b.newLabel();
        b.beql(skip);
        b.brw(target);
        b.bind(skip);
    };

    // SCB.
    for (Word v = 0; v < kScbSize; v += 4) {
        if (v == static_cast<Word>(ScbVector::Chmk))
            b.longwordAbs(h_chmk, kS);
        else if (v == static_cast<Word>(ScbVector::IntervalTimer))
            b.longwordAbs(h_timer, kS + 1); // interrupt stack
        else if (v == softwareInterruptVector(3))
            b.longwordAbs(h_resched, kS);
        else if (v == static_cast<Word>(ScbVector::ReservedOperand))
            b.longwordAbs(h_resop, kS);
        else if (v == static_cast<Word>(ScbVector::MachineCheck))
            b.longwordAbs(h_mcheck, kS + 1); // interrupt stack
        else if (v == static_cast<Word>(ScbVector::ModifyFault))
            b.longwordAbs(h_modify, kS);
        else if (v == static_cast<Word>(ScbVector::ConsoleReceive) ||
                 v == static_cast<Word>(ScbVector::ConsoleTransmit) ||
                 v == static_cast<Word>(ScbVector::DeviceBase))
            b.longwordAbs(h_ignore, kS + 1);
        else
            b.longwordAbs(h_panic, kS);
    }
    assert(b.here() == 0x200);

    // Boot.
    b.bind(entry);
    b.movl(Op::imm(boot_stack + kPageSize), Op::reg(SP));
    b.mtpr(Op::lit(0), Ipr::SCBB);
    b.mtpr(Op::imm(spt), Ipr::SBR);
    b.mtpr(Op::imm(mem_pages), Ipr::SLR);
    b.mtpr(Op::imm(kS + boot_p0), Ipr::P0BR);
    b.mtpr(Op::imm(kKernelTextPages), Ipr::P0LR);
    b.mtpr(Op::imm(kP1Vpns), Ipr::P1LR);
    b.mtpr(Op::lit(0), Ipr::P1BR);
    b.mtpr(Op::lit(1), Ipr::MAPEN);
    b.jmp(Op::absRef(in_s, kS));
    b.bind(in_s);
    b.mtpr(Op::imm(kS + int_stack + kPageSize), Ipr::ISP);
    b.movl(Op::imm(kS + boot_stack + kPageSize), Op::reg(SP));

    // Detect the virtual VAX the same way MiniVMS does: MFPR from
    // MEMSIZE succeeds there; on bare hardware the reserved-operand
    // handler clears the flag and skips the instruction.  A virtual
    // console then batches sys_putc output through kConsoleWrite.
    b.movl(Op::lit(1), cell(d_isvirt));
    b.movl(Op::lit(1), cell(d_probing));
    b.mfpr(Ipr::MEMSIZE, Op::reg(R0));
    b.bind(resume_detect);
    b.clrl(cell(d_probing));

    b.mtpr(Op::imm(static_cast<Longword>(
               -static_cast<std::int32_t>(cfg.quantumCycles))),
           Ipr::NICR);
    b.mtpr(Op::imm(iccs::kTransfer | iccs::kRun |
                   iccs::kInterruptEnable),
           Ipr::ICCS);
    b.clrl(cell(d_cur));
    b.movl(cell(d_pcbs), Op::reg(R0));
    b.mtpr(Op::reg(R0), Ipr::PCBB);
    b.ldpctx();
    b.rei();

    // Timer (interrupt stack).
    b.align(4);
    b.bind(h_timer);
    b.mtpr(Op::imm(iccs::kInterrupt | iccs::kRun |
                   iccs::kInterruptEnable),
           Ipr::ICCS);
    b.incl(cell(d_ticks));
    b.mtpr(Op::lit(3), Ipr::SIRR);
    b.rei();

    // Reschedule (kernel stack, IPL 3).
    b.align(4);
    b.bind(h_resched);
    b.svpctx();
    b.bind(pick_next);
    b.movl(cell(d_cur), Op::reg(R0));
    {
        Label scan = b.bindHere();
        Label ok = b.newLabel();
        b.incl(Op::reg(R0));
        b.cmpl(Op::reg(R0), Op::imm(static_cast<Longword>(nproc)));
        b.blss(ok);
        b.clrl(Op::reg(R0));
        b.bind(ok);
        b.tstl(cell(d_done).idx(R0));
        b.bneq(scan);
    }
    b.movl(Op::reg(R0), cell(d_cur));
    b.movl(cell(d_pcbs).idx(R0), Op::reg(R1));
    b.mtpr(Op::reg(R1), Ipr::PCBB);
    b.ldpctx();
    b.rei();

    // CHMK system calls: (SP)=code, R2.. = args.
    b.align(4);
    b.bind(h_chmk);
    b.incl(cell(d_sys));
    b.movl(Op::deferred(SP), Op::reg(R0));
    {
        Label putc = b.newLabel(), getpid = b.newLabel();
        Label epilogue = b.newLabel();
        b.tstl(Op::reg(R0));
        bneqFar(putc);
        // EXIT.
        b.addl2(Op::lit(4), Op::reg(SP));
        b.movl(cell(d_cur), Op::reg(R1));
        b.movl(Op::lit(1), cell(d_done).idx(R1));
        b.decl_(cell(d_live));
        beqlFar(finale);
        b.svpctx();
        b.brw(pick_next);

        b.bind(putc);
        b.cmpl(Op::reg(R0), Op::lit(kSysPutc));
        b.bneq(getpid);
        {
            Label bare = b.newLabel();
            Label staged = b.newLabel();
            b.tstl(cell(d_isvirt));
            b.beql(bare);
            // Virtual console: stage the character and flush a full
            // buffer through one kConsoleWrite exit instead of
            // trapping on TXDB for every byte.
            b.movl(cell(d_conlen), Op::reg(R0));
            b.movb(Op::reg(R2), cell(d_conbuf).idx(R0));
            b.incl(cell(d_conlen));
            b.cmpl(cell(d_conlen), Op::imm(kConBufBytes));
            b.blss(staged);
            b.bsbw(con_flush);
            b.bind(staged);
            b.clrl(Op::reg(R0));
            b.brb(epilogue);
            b.bind(bare);
            b.mtpr(Op::reg(R2), Ipr::TXDB);
            b.clrl(Op::reg(R0));
            b.brb(epilogue);
        }

        b.bind(getpid);
        b.cmpl(Op::reg(R0), Op::lit(kSysGetPid));
        {
            Label disk = b.newLabel();
            Label unknown = b.newLabel();
            b.bneq(disk);
            b.movl(cell(d_cur), Op::reg(R0));
            b.brb(epilogue);

            // DISK READ: one block into the kernel buffer, retried
            // with backoff on a device error like the MiniVMS driver
            // (the graceful-degradation contract of kcall.h).
            b.bind(disk);
            b.cmpl(Op::reg(R0), Op::lit(kSysDiskRead));
            b.bneq(unknown);
            {
                Label virt = b.newLabel();
                Label retry = b.newLabel();
                Label backoff = b.newLabel();
                Label done = b.newLabel();
                b.tstl(cell(d_isvirt));
                b.bneq(virt);
                b.mnegl(Op::lit(1), Op::reg(R0)); // no disk on bare HW
                b.brb(epilogue);
                b.bind(virt);
                b.pushr(Op::imm(0x3C)); // R2..R5
                b.movl(Op::reg(R2), Op::reg(R1));             // block
                b.movl(Op::lit(1), Op::reg(R2));              // count
                b.movl(Op::immLabel(d_diskbuf), Op::reg(R3)); // buffer
                b.movl(Op::imm(4), Op::reg(R4)); // attempt budget
                b.bind(retry);
                b.mtpr(Op::lit(kcallabi::kDiskRead), Ipr::KCALL);
                b.tstl(Op::reg(R0));
                b.beql(done);
                b.sobgtr(Op::reg(R4), backoff);
                b.popr(Op::imm(0x3C)); // retries exhausted
                b.movl(Op::lit(1), Op::reg(R0));
                b.brb(epilogue);
                b.bind(backoff);
                b.incl(cell(d_retries));
                b.movl(Op::imm(32), Op::reg(R0));
                {
                    Label spin = b.bindHere();
                    b.sobgtr(Op::reg(R0), spin);
                }
                b.brb(retry);
                b.bind(done);
                b.popr(Op::imm(0x3C));
                b.clrl(Op::reg(R0));
                b.brb(epilogue);
            }

            b.bind(unknown);
            b.mnegl(Op::lit(1), Op::reg(R0));
        }
        b.bind(epilogue);
        b.addl2(Op::lit(4), Op::reg(SP));
        b.rei();
    }

    // Finale.  Drain any staged console output first so the farewell
    // lands after every sys_putc byte, exactly as on bare hardware.
    b.bind(finale);
    b.bsbw(con_flush);
    b.movl(Op::imm(MiniUltrixImage::kResultMagic), cell(d_result));
    b.movl(cell(d_sys), Op::absRef(d_result, kS + 4));
    b.movl(Op::imm(static_cast<Longword>(nproc)),
           Op::absRef(d_result, kS + 8));
    b.movl(cell(d_retries), Op::absRef(d_result, kS + 12));
    b.movl(cell(d_mchecks), Op::absRef(d_result, kS + 16));
    b.mtpr(Op::imm('u'), Ipr::TXDB);
    b.mtpr(Op::imm('!'), Ipr::TXDB);
    b.mtpr(Op::imm('\n'), Ipr::TXDB);
    b.halt();

    // Modify fault (bare modified VAX only): set PTE<M>.
    b.align(4);
    b.bind(h_modify);
    b.pushr(Op::imm(0x07));
    b.movl(Op::disp(16, SP), Op::reg(R0));
    b.bicl3(Op::imm(0xC0000000), Op::reg(R0), Op::reg(R2));
    b.ashl(Op::imm(static_cast<Longword>(-7)), Op::reg(R2),
           Op::reg(R2));
    b.bicl2(Op::lit(3), Op::reg(R2));
    {
        Label is_p0 = b.newLabel(), is_p1 = b.newLabel(),
              have = b.newLabel();
        b.ashl(Op::imm(static_cast<Longword>(-30)), Op::reg(R0),
               Op::reg(R1));
        b.bicl2(Op::imm(0xFFFFFFFC), Op::reg(R1));
        b.tstl(Op::reg(R1));
        b.beql(is_p0);
        b.cmpl(Op::reg(R1), Op::lit(1));
        b.beql(is_p1);
        b.movl(Op::imm(kS + spt), Op::reg(R1));
        b.brb(have);
        b.bind(is_p0);
        b.mfpr(Ipr::P0BR, Op::reg(R1));
        b.brb(have);
        b.bind(is_p1);
        b.mfpr(Ipr::P1BR, Op::reg(R1));
        b.bind(have);
        b.addl2(Op::reg(R1), Op::reg(R2));
    }
    b.bisl2(Op::imm(Pte::kModify), Op::deferred(R2));
    b.mtpr(Op::reg(R0), Ipr::TBIS);
    b.popr(Op::imm(0x07));
    b.addl2(Op::lit(8), Op::reg(SP));
    b.rei();

    // Reserved operand fault: only legal during the boot machine-type
    // probe - clear the virtual flag and skip the faulting MFPR.
    b.align(4);
    b.bind(h_resop);
    b.tstl(cell(d_probing));
    beqlFar(h_panic);
    b.clrl(cell(d_isvirt));
    b.movl(Op::immLabel(resume_detect, kS), Op::deferred(SP));
    b.rei();

    // Drain the staged console buffer via one kConsoleWrite KCALL.
    // Clobbers R0-R2; a no-op while the buffer is empty (always, on
    // bare hardware).
    b.align(4);
    b.bind(con_flush);
    {
        Label out = b.newLabel();
        b.movl(cell(d_conlen), Op::reg(R2));
        b.beql(out);
        b.movl(Op::immLabel(d_conbuf), Op::reg(R1));
        b.mtpr(Op::lit(kcallabi::kConsoleWrite), Ipr::KCALL);
        b.clrl(cell(d_conlen));
        b.bind(out);
        b.rsb();
    }

    b.align(4);
    b.bind(h_ignore);
    b.rei();

    // Machine check (vector 0x04): the VMM reflects host ECC events
    // with the frame {byte count = 8, code, address}; log and resume.
    b.align(4);
    b.bind(h_mcheck);
    b.incl(cell(d_mchecks));
    b.addl2(Op::lit(12), Op::reg(SP));
    b.rei();

    b.align(4);
    b.bind(h_panic);
    b.mtpr(Op::imm('?'), Ipr::TXDB);
    b.halt();

    // Data.
    b.align(4);
    b.bind(d_isvirt);
    b.longword(0);
    b.bind(d_probing);
    b.longword(0);
    b.bind(d_conlen);
    b.longword(0);
    b.bind(d_conbuf);
    b.space(kConBufBytes);
    b.bind(d_ticks);
    b.longword(0);
    b.bind(d_live);
    b.longword(static_cast<Longword>(nproc));
    b.bind(d_cur);
    b.longword(0);
    b.bind(d_sys);
    b.longword(0);
    b.bind(d_retries);
    b.longword(0); // disk reads re-issued after a failed KCALL
    b.bind(d_mchecks);
    b.longword(0); // machine checks survived
    b.bind(d_diskbuf);
    b.space(512); // kSysDiskRead kernel bounce buffer
    b.bind(d_result);
    b.longword(0);
    b.longword(0);
    b.longword(0);
    b.longword(0);
    b.longword(0);
    const PhysAddr result_pa = b.labelAddress(d_result);
    b.bind(d_pcbs);
    for (const auto &p : procs)
        b.longword(p.pcb);
    b.bind(d_done);
    for (int i = 0; i < nproc; ++i)
        b.longword(0);

    auto kernel = b.finish();
    if (kernel.size() > kKernelTextPages * kPageSize)
        throw std::logic_error("MiniUltrix kernel too large");

    // --- Assemble the image ---
    MiniUltrixImage out;
    out.image.assign(cursor * kPageSize, 0);
    out.entry = b.labelAddress(entry);
    out.resultBase = result_pa;
    std::memcpy(out.image.data(), kernel.data(), kernel.size());

    auto prog = buildUserProgram(cfg);
    std::memcpy(&out.image[user_prog], prog.data(), prog.size());

    for (Longword i = 0; i < mem_pages; ++i) {
        pokeL(out.image, spt + 4 * i,
              Pte::make(true, Protection::KW, true, i).raw());
    }
    for (Longword i = 0; i < kKernelTextPages; ++i) {
        pokeL(out.image, boot_p0 + 4 * i,
              Pte::make(true, Protection::KW, true, i).raw());
    }

    const Longword p1lr =
        kP1Vpns - (kUserStackPages + kKernStackPages);
    const Longword p1_first = kP1Vpns - 256;
    const VirtAddr user_stack_top = 0x80000000;
    const VirtAddr kern_stack_top =
        user_stack_top - kUserStackPages * kPageSize;

    for (int i = 0; i < nproc; ++i) {
        const Proc &p = procs[i];
        // P0: shared user code (read-only), private data (M=0).
        for (Longword j = 0; j < kUserCodePages; ++j) {
            pokeL(out.image,
                  p.p0Table + 4 * ((kUserCodeVa >> kPageShift) + j),
                  Pte::make(true, Protection::UR, true,
                            (user_prog >> kPageShift) + j)
                      .raw());
        }
        for (Longword j = 0; j < cfg.dataPagesPerProcess; ++j) {
            pokeL(out.image,
                  p.p0Table + 4 * ((kUserDataVa >> kPageShift) + j),
                  Pte::make(true, Protection::UW, false,
                            (p.data >> kPageShift) + j)
                      .raw());
        }
        // P1: kernel stack below user stack.
        Pfn frame = p.stacks >> kPageShift;
        Vpn vpn = p1lr;
        for (Longword j = 0; j < kKernStackPages; ++j, ++vpn, ++frame) {
            pokeL(out.image, p.p1Table + 4 * (vpn - p1_first),
                  Pte::make(true, Protection::KW, true, frame).raw());
        }
        for (Longword j = 0; j < kUserStackPages; ++j, ++vpn, ++frame) {
            pokeL(out.image, p.p1Table + 4 * (vpn - p1_first),
                  Pte::make(true, Protection::UW, true, frame).raw());
        }

        Psl user_psl;
        user_psl.setCurrentMode(AccessMode::User);
        user_psl.setPreviousMode(AccessMode::User);
        pokeL(out.image, p.pcb + 0, kern_stack_top);  // KSP
        pokeL(out.image, p.pcb + 4, kern_stack_top);  // ESP (unused)
        pokeL(out.image, p.pcb + 8, kern_stack_top);  // SSP (unused)
        pokeL(out.image, p.pcb + 12, user_stack_top); // USP
        pokeL(out.image, p.pcb + 64, user_stack_top); // AP
        pokeL(out.image, p.pcb + 68, user_stack_top); // FP
        pokeL(out.image, p.pcb + 72, kUserCodeVa);
        pokeL(out.image, p.pcb + 76, user_psl.raw());
        pokeL(out.image, p.pcb + 80, kS + p.p0Table);
        pokeL(out.image, p.pcb + 84, p0_ptes | (4u << 24));
        pokeL(out.image, p.pcb + 88,
              (kS + p.p1Table) - 4 * p1_first);
        pokeL(out.image, p.pcb + 92, p1lr);
    }
    return out;
}

} // namespace vvax
