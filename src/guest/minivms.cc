/**
 * @file
 * The MiniVMS builder: assembles the kernel, the user workload
 * programs, and every static table (SCB, SPT, per-process page
 * tables, PCBs) into one bootable image.
 *
 * The layout is fully static: the builder computes the physical page
 * plan up front, emits the kernel with CodeBuilder, then writes the
 * tables directly into the image.  See minivms.h for the system
 * overview.
 */

#include "guest/minivms.h"

#include <cassert>
#include <cstring>
#include <map>
#include <stdexcept>

#include "arch/ipr.h"
#include "arch/protection.h"
#include "arch/psl.h"
#include "arch/pte.h"
#include "arch/scb.h"
#include "vasm/code_builder.h"
#include "vmm/kcall.h"

namespace vvax {

namespace {

constexpr Longword kS = kSystemBase; // 0x80000000

// System service codes (CHMK).
constexpr Byte kSysExit = 0;
constexpr Byte kSysPuts = 1;
constexpr Byte kSysDiskRead = 2;
constexpr Byte kSysDiskWrite = 3;
constexpr Byte kSysGetTime = 4;
constexpr Byte kSysGetPid = 5;
constexpr Byte kSysHiber = 6;

/** kConsoleWrite bounce-buffer size: one VMM exit per chunk. */
constexpr Longword kConsoleChunk = 128;
// Record service codes (CHME).
constexpr Byte kRmsPut = 1;
constexpr Byte kRmsGet = 2;
// CLI service codes (CHMS).
constexpr Byte kCliCommand = 1;

// Per-process P0 virtual layout.
constexpr VirtAddr kUserCodeVa = 0x1000;
constexpr Longword kUserCodePages = 8;
constexpr VirtAddr kUserDataVa = 0x20000;
constexpr VirtAddr kRmsVa = 0x30000;
constexpr Longword kRmsPages = 4;
constexpr VirtAddr kCliVa = 0x38000;
constexpr Longword kCliPages = 1;

// Per-process P1 stacks (top 16 pages of P1 space).
constexpr Longword kP1Vpns = 0x200000;
constexpr VirtAddr kUserStackTop = 0x80000000; // exclusive
constexpr Longword kUserStackPages = 8;
constexpr Longword kKernStackPages = 4;
constexpr Longword kExecStackPages = 2;
constexpr Longword kSuperStackPages = 2;
constexpr Longword kP1StackPages = kUserStackPages + kKernStackPages +
                                   kExecStackPages + kSuperStackPages;

/** Patch a longword into a raw image. */
void
pokeL(std::vector<Byte> &image, PhysAddr pa, Longword value)
{
    assert(pa + 4 <= image.size());
    std::memcpy(&image[pa], &value, 4);
}

/** Build one user workload program (origin = its execution address). */
std::vector<Byte>
buildWorkload(Workload w, const MiniVmsConfig &cfg)
{
    CodeBuilder b(kUserCodeVa);
    const Longword iters = cfg.iterations;
    const Longword data_pages = cfg.dataPagesPerProcess;

    auto sys = [&](Byte code) { b.chmk(Op::lit(code)); };

    switch (w) {
      case Workload::Compute: {
        // Pure ALU loop with a single hot data longword.
        Label loop = b.newLabel();
        b.movl(Op::imm(iters * 64), Op::reg(R6));
        b.movl(Op::lit(7), Op::reg(R0));
        b.bind(loop);
        b.mull2(Op::lit(13), Op::reg(R0));
        b.addl2(Op::lit(11), Op::reg(R0));
        b.divl2(Op::lit(3), Op::reg(R0));
        b.ashl(Op::lit(2), Op::reg(R0), Op::reg(R1));
        b.xorl2(Op::reg(R1), Op::reg(R0));
        b.movl(Op::reg(R0), Op::abs(kUserDataVa));
        b.sobgtr(Op::reg(R6), loop);
        sys(kSysExit);
        break;
      }
      case Workload::Edit: {
        // Interactive editing: line copies, a character scan, and a
        // console status line each iteration - heavy CHMK traffic.
        Label outer = b.newLabel();
        Label scan = b.newLabel();
        Label scan_done = b.newLabel();
        Label msg = b.newLabel();
        b.movl(Op::imm(iters), Op::reg(R11));
        // Seed a "line" in the first data page.
        b.movl(Op::imm(0x2E2E2E2E), Op::abs(kUserDataVa));
        b.movb(Op::imm('\n'), Op::abs(kUserDataVa + 119));
        b.bind(outer);
        // Copy the line into a rotating slot (touches pages).
        b.movl(Op::reg(R11), Op::reg(R7));
        b.bicl2(Op::imm(~(data_pages - 1)), Op::reg(R7));
        b.ashl(Op::imm(9), Op::reg(R7), Op::reg(R7));
        b.addl2(Op::imm(kUserDataVa), Op::reg(R7));
        b.movc3(Op::imm(120), Op::abs(kUserDataVa), Op::deferred(R7));
        // Scan the copy for the newline (R3 = end of copy from MOVC3).
        b.subl2(Op::imm(120), Op::reg(R3));
        b.movl(Op::imm(120), Op::reg(R8));
        b.bind(scan);
        b.cmpb(Op::autoInc(R3), Op::imm('\n'));
        b.beql(scan_done);
        b.sobgtr(Op::reg(R8), scan);
        b.bind(scan_done);
        if (cfg.chattyConsole) {
            b.moval(Op::ref(msg), Op::reg(R2));
            b.movl(Op::lit(6), Op::reg(R3));
            sys(kSysPuts);
        } else {
            // One short line per 8 iterations keeps the CHMK density
            // realistic without flooding the console buffer.
            Label skip = b.newLabel();
            b.movl(Op::reg(R11), Op::reg(R0));
            b.bicl2(Op::imm(~7u), Op::reg(R0));
            b.bneq(skip);
            b.moval(Op::ref(msg), Op::reg(R2));
            b.movl(Op::lit(6), Op::reg(R3));
            sys(kSysPuts);
            b.bind(skip);
        }
        b.sobgtr(Op::reg(R11), outer);
        sys(kSysExit);
        b.bind(msg);
        b.ascii("~edit\n");
        break;
      }
      case Workload::Transaction: {
        Label outer = b.newLabel();
        Label fill = b.newLabel();
        Label no_cli = b.newLabel();
        b.movl(Op::imm(iters), Op::reg(R11));
        b.bind(outer);
        // Record buffer in a rotating data page.
        b.movl(Op::reg(R11), Op::reg(R7));
        b.mull2(Op::lit(37), Op::reg(R7));
        b.bicl2(Op::imm(~(data_pages - 1)), Op::reg(R7));
        b.ashl(Op::imm(9), Op::reg(R7), Op::reg(R7));
        b.addl2(Op::imm(kUserDataVa), Op::reg(R7));
        b.movl(Op::reg(R7), Op::reg(R9));
        // Fill 16 longwords with a key.
        b.movl(Op::imm(16), Op::reg(R8));
        b.bind(fill);
        b.movl(Op::reg(R11), Op::autoInc(R7));
        b.sobgtr(Op::reg(R8), fill);
        // Executive-mode record put: R2 = buffer, R3 = length.
        b.movl(Op::reg(R9), Op::reg(R2));
        b.movl(Op::imm(64), Op::reg(R3));
        b.chme(Op::lit(kRmsPut));
        // Disk write: R2 = block, R3 = buffer va, R4 = count.
        b.movl(Op::reg(R11), Op::reg(R2));
        b.bicl2(Op::imm(~63u), Op::reg(R2));
        b.movl(Op::reg(R9), Op::reg(R3));
        b.movl(Op::lit(1), Op::reg(R4));
        sys(kSysDiskWrite);
        // Record get, then re-read the block from disk.
        b.movl(Op::reg(R9), Op::reg(R2));
        b.movl(Op::imm(64), Op::reg(R3));
        b.chme(Op::lit(kRmsGet));
        b.movl(Op::reg(R11), Op::reg(R2));
        b.bicl2(Op::imm(~63u), Op::reg(R2));
        b.movl(Op::reg(R9), Op::reg(R3));
        b.movl(Op::lit(1), Op::reg(R4));
        sys(kSysDiskRead);
        // Every 8th transaction, log a CLI command (supervisor mode).
        b.movl(Op::reg(R11), Op::reg(R0));
        b.bicl2(Op::imm(~7u), Op::reg(R0));
        b.bneq(no_cli);
        b.chms(Op::lit(kCliCommand));
        b.bind(no_cli);
        b.sobgtr(Op::reg(R11), outer);
        sys(kSysExit);
        break;
      }
      case Workload::PageStress: {
        Label outer = b.newLabel();
        Label inner = b.newLabel();
        b.movl(Op::imm(iters), Op::reg(R11));
        b.bind(outer);
        b.movl(Op::imm(data_pages), Op::reg(R7));
        b.movl(Op::imm(kUserDataVa), Op::reg(R8));
        b.bind(inner);
        b.movl(Op::reg(R11), Op::deferred(R8));
        b.addl2(Op::imm(kPageSize), Op::reg(R8));
        b.sobgtr(Op::reg(R7), inner);
        b.sobgtr(Op::reg(R11), outer);
        sys(kSysExit);
        break;
      }
      case Workload::Idle: {
        Label loop = b.newLabel();
        b.movl(Op::imm(iters), Op::reg(R11));
        b.bind(loop);
        sys(kSysHiber);
        b.sobgtr(Op::reg(R11), loop);
        sys(kSysExit);
        break;
      }
    }
    auto image = b.finish();
    if (image.size() > kUserCodePages * kPageSize)
        throw std::logic_error("workload program too large");
    return image;
}

} // namespace

MiniVmsImage
buildMiniVms(const MiniVmsConfig &cfg)
{
    const Longword mem_pages = (cfg.memBytes + kPageSize - 1) / kPageSize;
    const int nproc = cfg.numProcesses;
    if (nproc < 1 || nproc > 32)
        throw std::invalid_argument("numProcesses out of range");
    if ((cfg.dataPagesPerProcess & (cfg.dataPagesPerProcess - 1)) != 0)
        throw std::invalid_argument(
            "dataPagesPerProcess must be a power of two");

    // ----- Physical page plan -------------------------------------------
    constexpr Longword kKernelTextPages = 80; // incl. the SCB at page 0
    Longword cursor = kKernelTextPages;
    auto alloc = [&](Longword pages) {
        const Longword start = cursor;
        cursor += pages;
        return static_cast<PhysAddr>(start * kPageSize);
    };

    const PhysAddr boot_p0_table = alloc(1);
    const PhysAddr boot_stack = alloc(1);
    const PhysAddr int_stack = alloc(2);
    const PhysAddr time_page = alloc(1);
    const Longword spt_pages = (mem_pages * 4 + 4 + kPageSize - 1) /
                               kPageSize;
    const PhysAddr spt = alloc(spt_pages);

    std::map<Workload, PhysAddr> program_pa;
    std::vector<Workload> proc_work(nproc);
    for (int i = 0; i < nproc; ++i) {
        const Workload w =
            cfg.workloads.empty()
                ? Workload::Compute
                : cfg.workloads[i % cfg.workloads.size()];
        proc_work[i] = w;
        if (!program_pa.count(w))
            program_pa[w] = alloc(kUserCodePages);
    }

    struct ProcPlan
    {
        PhysAddr pcb, p0Table, p1Table, rms, cli, data, stacks;
    };
    const Longword p0_ptes = (kCliVa >> kPageShift) + kCliPages;
    const Longword p0_table_pages =
        (p0_ptes * 4 + kPageSize - 1) / kPageSize;
    const Longword p1_table_pages = 2; // 256 PTEs
    std::vector<ProcPlan> procs(nproc);
    for (auto &p : procs) {
        p.pcb = alloc(1);
        p.p0Table = alloc(p0_table_pages);
        p.p1Table = alloc(p1_table_pages);
        p.rms = alloc(kRmsPages);
        p.cli = alloc(kCliPages);
        p.data = alloc(cfg.dataPagesPerProcess);
        p.stacks = alloc(kP1StackPages);
    }

    if (cursor > mem_pages) {
        throw std::invalid_argument(
            "MiniVMS configuration does not fit in guest memory");
    }

    const VirtAddr device_sva = kS + mem_pages * kPageSize;
    const Longword slr = mem_pages + 1; // +1 for the device window

    // ----- Kernel ----------------------------------------------------------
    CodeBuilder b(0);

    const Label entry = b.newLabel();
    const Label in_s = b.newLabel();
    const Label h_resop = b.newLabel();
    const Label h_timer = b.newLabel();
    const Label h_resched = b.newLabel();
    const Label h_chmk = b.newLabel();
    const Label h_chme = b.newLabel();
    const Label h_chms = b.newLabel();
    const Label h_modify = b.newLabel();
    const Label h_ignore = b.newLabel();
    const Label h_panic = b.newLabel();
    const Label h_arith = b.newLabel();
    const Label h_mcheck = b.newLabel();
    const Label resume_detect = b.newLabel();
    const Label pick_next = b.newLabel();
    const Label finale = b.newLabel();
    const Label exit_common = b.newLabel();
    const Label svc_epilogue = b.newLabel();
    const Label d_isvirt = b.newLabel();
    const Label d_features = b.newLabel();
    const Label d_ring = b.newLabel();
    const Label d_conbuf = b.newLabel();
    const Label d_probing = b.newLabel();
    const Label d_ticks = b.newLabel();
    const Label d_live = b.newLabel();
    const Label d_curproc = b.newLabel();
    const Label d_syscount = b.newLabel();
    const Label d_retries = b.newLabel();
    const Label d_mchecks = b.newLabel();
    const Label d_result = b.newLabel();
    const Label d_pcbs = b.newLabel();
    const Label d_done = b.newLabel();
    const Label done_msg = b.newLabel();
    const Label diskerr_msg = b.newLabel();

    // Far-conditional helpers (conditional branches are byte-range).
    auto beqlFar = [&](Label target) {
        Label skip = b.newLabel();
        b.bneq(skip);
        b.brw(target);
        b.bind(skip);
    };
    auto bneqFar = [&](Label target) {
        Label skip = b.newLabel();
        b.beql(skip);
        b.brw(target);
        b.bind(skip);
    };
    auto cell = [&](Label l) { return Op::absRef(l, kS); };

    // --- SCB (page 0) ---
    struct ScbPlan
    {
        Label handler;
        bool interruptStack;
    };
    std::map<Word, ScbPlan> scb_entries = {
        {static_cast<Word>(ScbVector::MachineCheck), {h_mcheck, true}},
        {static_cast<Word>(ScbVector::ReservedOperand), {h_resop, false}},
        {static_cast<Word>(ScbVector::Arithmetic), {h_arith, false}},
        {static_cast<Word>(ScbVector::ModifyFault), {h_modify, false}},
        {static_cast<Word>(ScbVector::Chmk), {h_chmk, false}},
        {static_cast<Word>(ScbVector::Chme), {h_chme, false}},
        {static_cast<Word>(ScbVector::Chms), {h_chms, false}},
        {static_cast<Word>(ScbVector::IntervalTimer), {h_timer, true}},
        {softwareInterruptVector(3), {h_resched, false}},
        {static_cast<Word>(ScbVector::ConsoleReceive), {h_ignore, true}},
        {static_cast<Word>(ScbVector::ConsoleTransmit), {h_ignore, true}},
        {static_cast<Word>(ScbVector::DeviceBase), {h_ignore, false}},
    };
    for (Word v = 0; v < kScbSize; v += 4) {
        auto it = scb_entries.find(v);
        if (it == scb_entries.end())
            b.longwordAbs(h_panic, kS);
        else
            b.longwordAbs(it->second.handler,
                          kS + (it->second.interruptStack ? 1 : 0));
    }
    assert(b.here() == 0x200);

    // --- Boot (physical addresses; memory management off) ---
    b.bind(entry);
    b.movl(Op::imm(boot_stack + kPageSize), Op::reg(SP));
    b.mtpr(Op::lit(0), Ipr::SCBB);
    b.mtpr(Op::imm(spt), Ipr::SBR);
    b.mtpr(Op::imm(slr), Ipr::SLR);
    b.mtpr(Op::imm(kS + boot_p0_table), Ipr::P0BR);
    b.mtpr(Op::imm(kKernelTextPages), Ipr::P0LR);
    b.mtpr(Op::imm(kP1Vpns), Ipr::P1LR);
    b.mtpr(Op::lit(0), Ipr::P1BR);
    b.mtpr(Op::lit(1), Ipr::MAPEN);
    b.jmp(Op::absRef(in_s, kS));

    // --- Mapped; executing in system space from here on ---
    b.bind(in_s);
    b.mtpr(Op::imm(kS + int_stack + 2 * kPageSize), Ipr::ISP);
    b.movl(Op::imm(kS + boot_stack + kPageSize), Op::reg(SP));

    // Detect the virtual VAX (Section 5): MFPR from MEMSIZE succeeds
    // there; on bare hardware the reserved-operand handler clears the
    // flag and skips the instruction.
    b.movl(Op::lit(1), cell(d_isvirt));
    b.movl(Op::lit(1), cell(d_probing));
    b.mfpr(Ipr::MEMSIZE, Op::reg(R0));
    b.bind(resume_detect);
    b.clrl(cell(d_probing));

    // Virtual VAX: register the uptime mailbox with the VMM and ask
    // which KCALL fast paths it implements.  A VMM predating
    // kQueryFeatures answers kError, which carries no feature bits
    // (kcall.h), so every fast path degrades to the per-transfer ABI.
    Label boot_after_mailbox = b.newLabel();
    b.tstl(cell(d_isvirt));
    b.beql(boot_after_mailbox);
    b.movl(Op::imm(time_page), Op::reg(R1));
    b.mtpr(Op::imm(kcallabi::kSetUptimeMailbox), Ipr::KCALL);
    b.mtpr(Op::lit(kcallabi::kQueryFeatures), Ipr::KCALL);
    b.movl(Op::reg(R0), cell(d_features));
    b.bind(boot_after_mailbox);

    // Start the clock and dispatch process 0.
    b.mtpr(Op::imm(static_cast<Longword>(
               -static_cast<std::int32_t>(cfg.quantumCycles))),
           Ipr::NICR);
    b.mtpr(Op::imm(iccs::kTransfer | iccs::kRun |
                   iccs::kInterruptEnable),
           Ipr::ICCS);
    b.clrl(cell(d_curproc));
    b.movl(cell(d_pcbs), Op::reg(R0));
    b.mtpr(Op::reg(R0), Ipr::PCBB);
    b.ldpctx();
    b.rei();

    // --- Reserved operand fault (boot machine-type probe) ---
    b.align(4);
    b.bind(h_resop);
    b.tstl(cell(d_probing));
    beqlFar(h_panic);
    b.clrl(cell(d_isvirt));
    b.movl(Op::immLabel(resume_detect, kS), Op::deferred(SP));
    b.rei();

    // --- Interval timer (interrupt stack, IPL 24) ---
    b.align(4);
    b.bind(h_timer);
    b.mtpr(Op::imm(iccs::kInterrupt | iccs::kRun |
                   iccs::kInterruptEnable),
           Ipr::ICCS);
    b.incl(cell(d_ticks));
    b.mtpr(Op::lit(3), Ipr::SIRR);
    b.rei();

    // --- Rescheduling software interrupt (kernel stack, IPL 3) ---
    b.align(4);
    b.bind(h_resched);
    b.svpctx();
    b.bind(pick_next);
    b.movl(cell(d_curproc), Op::reg(R0));
    {
        Label scan = b.bindHere();
        Label no_wrap = b.newLabel();
        b.incl(Op::reg(R0));
        b.cmpl(Op::reg(R0), Op::imm(static_cast<Longword>(nproc)));
        b.blss(no_wrap);
        b.clrl(Op::reg(R0));
        b.bind(no_wrap);
        b.tstl(cell(d_done).idx(R0));
        b.bneq(scan);
    }
    b.movl(Op::reg(R0), cell(d_curproc));
    b.movl(cell(d_pcbs).idx(R0), Op::reg(R1));
    b.mtpr(Op::reg(R1), Ipr::PCBB);
    b.ldpctx();
    b.rei();

    // --- CHMK: kernel system services ---
    // Frame on the kernel stack: (SP) = code, +4 PC, +8 PSL.
    b.align(4);
    b.bind(h_chmk);
    b.incl(cell(d_syscount));
    b.mtpr(Op::lit(8), Ipr::IPL); // service synchronization level
    b.movl(Op::deferred(SP), Op::reg(R0));

    Label svc_puts = b.newLabel();
    Label svc_disk = b.newLabel();
    Label svc_gettim = b.newLabel();
    Label svc_getpid = b.newLabel();
    Label svc_hiber = b.newLabel();

    b.tstl(Op::reg(R0));
    bneqFar(svc_puts); // fallthrough = EXIT (code 0); test others below
    // EXIT: discard the CHM frame's code longword; the rest of the
    // frame (PC/PSL) is exactly what SVPCTX banks into the dead PCB.
    b.addl2(Op::lit(4), Op::reg(SP));
    b.brw(exit_common);

    b.bind(exit_common);
    b.movl(cell(d_curproc), Op::reg(R1));
    b.movl(Op::lit(1), cell(d_done).idx(R1));
    b.decl_(cell(d_live));
    beqlFar(finale);
    b.svpctx();
    b.brw(pick_next);

    // PUTS: R2 = user buffer, R3 = length.
    b.bind(svc_puts);
    b.cmpl(Op::reg(R0), Op::lit(kSysPuts));
    bneqFar(svc_disk);
    {
        Label fail = b.newLabel();
        Label done = b.newLabel();
        Label loop = b.newLabel();
        Label kc_path = b.newLabel();
        b.tstl(Op::reg(R3));
        b.beql(done);
        b.prober(Op::lit(0), Op::reg(R3), Op::deferred(R2));
        b.beql(fail); // Z=1: not accessible from the caller's mode
        b.tstl(cell(d_isvirt));
        bneqFar(kc_path);
        b.pushr(Op::imm(0x0C)); // save R2, R3
        b.bind(loop);
        b.movzbl(Op::autoInc(R2), Op::reg(R1));
        b.mtpr(Op::reg(R1), Ipr::TXDB);
        b.sobgtr(Op::reg(R3), loop);
        b.popr(Op::imm(0x0C));
        b.bind(done);
        b.clrl(Op::reg(R0));
        b.brw(svc_epilogue);
        b.bind(fail);
        b.movl(Op::lit(1), Op::reg(R0));
        b.brw(svc_epilogue);

        // Virtual VAX: bounce the user buffer through a kernel buffer
        // and hand the VMM whole chunks via kConsoleWrite — one exit
        // per chunk instead of one TXDB trap per character.  Same
        // bytes in the same order as the TXDB loop above.
        Label chunk = b.newLabel();
        Label sz_ok = b.newLabel();
        b.bind(kc_path);
        b.pushr(Op::imm(0x3C)); // R2..R5 (MOVC3 clobbers R0-R5)
        b.bind(chunk);
        b.movl(Op::reg(R3), Op::reg(R1));
        b.cmpl(Op::reg(R1), Op::imm(kConsoleChunk));
        b.blequ(sz_ok);
        b.movl(Op::imm(kConsoleChunk), Op::reg(R1));
        b.bind(sz_ok);
        b.pushl(Op::reg(R1)); // chunk length
        b.pushl(Op::reg(R2)); // user cursor
        b.pushl(Op::reg(R3)); // remaining
        b.movc3(Op::reg(R1), Op::deferred(R2), cell(d_conbuf));
        b.movl(Op::disp(8, SP), Op::reg(R2));        // length arg
        b.movl(Op::immLabel(d_conbuf), Op::reg(R1)); // VM-phys buffer
        b.mtpr(Op::lit(kcallabi::kConsoleWrite), Ipr::KCALL);
        b.movl(Op::autoInc(SP), Op::reg(R3));
        b.movl(Op::autoInc(SP), Op::reg(R2));
        b.movl(Op::autoInc(SP), Op::reg(R1));
        b.addl2(Op::reg(R1), Op::reg(R2)); // advance the cursor
        b.subl2(Op::reg(R1), Op::reg(R3)); // and what's left
        b.bgtr(chunk);
        b.popr(Op::imm(0x3C));
        b.clrl(Op::reg(R0));
        b.brw(svc_epilogue);
    }

    // DISK READ/WRITE: R2 = block, R3 = user va, R4 = count (1).
    b.bind(svc_disk);
    b.cmpl(Op::reg(R0), Op::lit(kSysDiskRead));
    {
        Label is_disk = b.newLabel();
        b.beql(is_disk);
        b.cmpl(Op::reg(R0), Op::lit(kSysDiskWrite));
        bneqFar(svc_gettim);
        b.bind(is_disk);
    }
    {
        Label fail = b.newLabel();
        Label kcall_path = b.newLabel();
        Label go = b.newLabel();
        Label wr = b.newLabel();
        Label poll = b.newLabel();
        Label out = b.newLabel();
        // Validate the user buffer (PROBEW: write implies read).
        b.probew(Op::lit(0), Op::imm(512), Op::deferred(R3));
        beqlFar(fail);
        b.pushr(Op::imm(0xFC)); // save R2..R7
        // Translate the buffer address through our own P0 table.
        b.bicl3(Op::imm(0xC0000000), Op::reg(R3), Op::reg(R5));
        b.ashl(Op::imm(static_cast<Longword>(-9)), Op::reg(R5),
               Op::reg(R5));
        b.ashl(Op::lit(2), Op::reg(R5), Op::reg(R5));
        b.mfpr(Ipr::P0BR, Op::reg(R6));
        b.addl2(Op::reg(R6), Op::reg(R5));
        b.movl(Op::deferred(R5), Op::reg(R5)); // the PTE
        b.bicl2(Op::imm(0xFFE00000), Op::reg(R5));
        b.ashl(Op::lit(9), Op::reg(R5), Op::reg(R5));
        b.bicl3(Op::imm(0xFFFFFE00), Op::reg(R3), Op::reg(R6));
        b.bisl2(Op::reg(R6), Op::reg(R5)); // physical buffer address
        if (cfg.diskCsrPfn == 0) {
            // Start-I/O through KCALL when virtual (Section 4.4.3).
            b.tstl(cell(d_isvirt));
            b.bneq(kcall_path);
            // Bare machine with no controller configured.
            b.popr(Op::imm(0xFC));
            b.brw(fail);
        } else {
            b.brw(go); // the KCALL retry section outgrew a byte branch
        }
        b.bind(kcall_path);
        Label single = b.newLabel();
        {
            // Post through the kDiskBatch descriptor ring when the
            // VMM advertises it (one-entry ring: the syscall ABI moves
            // one extent, but the driver exercises the same ring
            // format MiniUltrix and the I/O-dense microguest batch
            // through).  Fall back to the per-transfer KCALLs on a
            // VMM that predates the feature bit.
            Label batch_failed = b.newLabel();
            Label use_batch = b.newLabel();
            b.bbs(Op::lit(1), cell(d_features), use_batch);
            b.brw(single); // batch section outgrew a byte branch
            b.bind(use_batch);
            b.movl(Op::reg(R2), cell(d_ring));                   // block
            b.movl(Op::reg(R4), Op::absRef(d_ring, kS + 4));     // count
            b.movl(Op::reg(R5), Op::absRef(d_ring, kS + 8));     // buffer
            b.subl3(Op::lit(2), Op::reg(R0),
                    Op::absRef(d_ring, kS + 12)); // syscall 2/3 -> flags 0/1
            b.movl(Op::immLabel(d_ring), Op::reg(R1));
            b.movl(Op::lit(1), Op::reg(R2));
            b.mtpr(Op::lit(kcallabi::kDiskBatch), Ipr::KCALL);
            b.tstl(Op::reg(R0));
            b.bneq(batch_failed);
            {
                // Async VMM (feature bit 2): kOk in R0 acknowledged
                // the submission only.  The flags cell was written
                // with its status bits clear (kBatchStatusNone), so
                // poll flags<31:16> until the VMM posts the real
                // status at the completion tick (kcall.h).  A sync
                // VMM already posted it, making the poll a single
                // pass.
                Label await = b.bindHere();
                b.ashl(Op::imm(static_cast<Longword>(-16)),
                       Op::absRef(d_ring, kS + 12), Op::reg(R0));
                b.beql(await); // kBatchStatusNone: still in flight
            }
            b.cmpl(Op::reg(R0), Op::lit(kcallabi::kBatchStatusOk));
            b.bneq(batch_failed);
            b.popr(Op::imm(0xFC));
            b.clrl(Op::reg(R0));
            b.brw(svc_epilogue);
            // A torn or faulted ring degrades to per-block transfers
            // (kcall.h): reload the request from the ring descriptor -
            // the cells are authoritative, and the VMM preserved the
            // guest flags bits under its status word - and fall into
            // the retrying single-transfer path below.
            b.bind(batch_failed);
            b.incl(cell(d_retries));
            b.movl(cell(d_ring), Op::reg(R2));               // block
            b.movl(Op::absRef(d_ring, kS + 4), Op::reg(R4)); // count
            b.movl(Op::absRef(d_ring, kS + 8), Op::reg(R5)); // buffer
            b.bicl3(Op::imm(~1u), Op::absRef(d_ring, kS + 12),
                    Op::reg(R0)); // flags bit 0 = direction
            b.addl2(Op::lit(2), Op::reg(R0)); // back to syscall 2/3
        }
        b.bind(single);
        {
            // Bounded retry with backoff: a transient device error is
            // re-issued up to three more times with a short spin
            // between attempts; a persistent one surfaces as a
            // console diagnostic and an error status - never silent
            // corruption.
            Label retry = b.newLabel();
            Label backoff = b.newLabel();
            Label give_up = b.newLabel();
            Label ok = b.newLabel();
            b.subl3(Op::lit(1), Op::reg(R0),
                    Op::reg(R7));             // syscall 2/3 -> KCALL 1/2
            b.movl(Op::reg(R2), Op::reg(R1)); // block
            b.movl(Op::reg(R4), Op::reg(R2)); // count
            b.movl(Op::reg(R5), Op::reg(R3)); // VM-physical address
            b.movl(Op::imm(4), Op::reg(R6));  // attempt budget
            b.bind(retry);
            b.mtpr(Op::reg(R7), Ipr::KCALL);  // R0 <- status
            b.tstl(Op::reg(R0));
            b.beql(ok);
            b.sobgtr(Op::reg(R6), backoff);
            b.brw(give_up);
            b.bind(backoff);
            b.incl(cell(d_retries));
            b.movl(Op::imm(64), Op::reg(R0)); // spin before re-issuing
            {
                Label spin = b.bindHere();
                b.sobgtr(Op::reg(R0), spin);
            }
            b.brb(retry);
            b.bind(ok);
            b.popr(Op::imm(0xFC));
            b.clrl(Op::reg(R0));
            b.brw(svc_epilogue);
            // Persistent failure: tell the operator, fail the syscall.
            b.bind(give_up);
            {
                Label loop = b.newLabel();
                b.moval(Op::ref(diskerr_msg), Op::reg(R2));
                b.movl(Op::imm(15), Op::reg(R3));
                b.bind(loop);
                b.movzbl(Op::autoInc(R2), Op::reg(R1));
                b.mtpr(Op::reg(R1), Ipr::TXDB);
                b.sobgtr(Op::reg(R3), loop);
            }
            b.popr(Op::imm(0xFC));
            b.movl(Op::lit(1), Op::reg(R0));
            b.brw(svc_epilogue);
        }
        // Memory-mapped controller (bare machine, or the Mmio
        // ablation inside a VM).
        b.bind(go);
        b.movl(Op::reg(R2), Op::abs(device_sva + 4));  // block
        b.movl(Op::reg(R4), Op::abs(device_sva + 8));  // count
        b.movl(Op::reg(R5), Op::abs(device_sva + 12)); // phys addr
        b.cmpl(Op::reg(R0), Op::lit(kSysDiskWrite));
        b.beql(wr);
        b.movl(Op::lit(1), Op::reg(R6)); // GO, read
        b.brb(poll);
        b.bind(wr);
        b.movl(Op::imm(0x101), Op::reg(R6)); // GO | write
        b.bind(poll);
        b.movl(Op::reg(R6), Op::abs(device_sva));
        {
            Label spin = b.bindHere();
            b.bbc(Op::lit(7), Op::abs(device_sva), spin); // wait READY
        }
        b.popr(Op::imm(0xFC));
        b.clrl(Op::reg(R0));
        b.brb(out);
        b.bind(fail);
        b.movl(Op::lit(1), Op::reg(R0));
        b.bind(out);
        b.brw(svc_epilogue);
    }

    // GETTIM: R0 <- system uptime in cycles.
    b.bind(svc_gettim);
    b.cmpl(Op::reg(R0), Op::lit(kSysGetTime));
    bneqFar(svc_getpid);
    {
        Label bare = b.newLabel();
        Label out = b.newLabel();
        b.tstl(cell(d_isvirt));
        b.beql(bare);
        // Virtual: the VMM maintains uptime in our memory (Sec. 5).
        b.movl(Op::abs(kS + time_page), Op::reg(R0));
        b.brb(out);
        b.bind(bare);
        // Bare: count of interval interrupts times the quantum.
        b.movl(cell(d_ticks), Op::reg(R0));
        b.mull2(Op::imm(cfg.quantumCycles), Op::reg(R0));
        b.bind(out);
        b.brw(svc_epilogue);
    }

    // GETPID.
    b.bind(svc_getpid);
    b.cmpl(Op::reg(R0), Op::lit(kSysGetPid));
    bneqFar(svc_hiber);
    b.movl(cell(d_curproc), Op::reg(R0));
    b.brw(svc_epilogue);

    // HIBER: the idle handshake.  On the virtual VAX this is WAIT
    // (Section 5); on bare hardware, a brief pause.
    b.bind(svc_hiber);
    b.cmpl(Op::reg(R0), Op::lit(kSysHiber));
    {
        Label unknown = b.newLabel();
        Label bare = b.newLabel();
        Label out = b.newLabel();
        b.bneq(unknown);
        b.tstl(cell(d_isvirt));
        b.beql(bare);
        b.mtpr(Op::lit(0), Ipr::IPL); // WAIT at low IPL
        b.wait();
        b.clrl(Op::reg(R0));
        b.brb(out);
        b.bind(bare);
        b.movl(Op::imm(50), Op::reg(R1));
        {
            Label spin = b.bindHere();
            b.sobgtr(Op::reg(R1), spin);
        }
        b.clrl(Op::reg(R0));
        b.bind(out);
        b.brw(svc_epilogue);
        b.bind(unknown);
        b.mnegl(Op::lit(1), Op::reg(R0)); // unknown service
        b.brw(svc_epilogue);
    }

    // Common system service exit.
    b.bind(svc_epilogue);
    b.mtpr(Op::lit(0), Ipr::IPL);
    b.addl2(Op::lit(4), Op::reg(SP)); // pop the CHM code
    b.rei();

    // --- Final system shutdown: record results, say goodbye, halt ---
    b.bind(finale);
    b.movl(Op::imm(MiniVmsImage::kResultMagic), cell(d_result));
    b.movl(cell(d_ticks), Op::absRef(d_result, kS + 4));
    b.movl(Op::imm(static_cast<Longword>(nproc)),
           Op::absRef(d_result, kS + 8));
    b.movl(cell(d_syscount), Op::absRef(d_result, kS + 12));
    b.movl(cell(d_retries), Op::absRef(d_result, kS + 16));
    b.movl(cell(d_mchecks), Op::absRef(d_result, kS + 20));
    {
        Label loop = b.newLabel();
        b.moval(Op::ref(done_msg), Op::reg(R2));
        b.movl(Op::imm(14), Op::reg(R3));
        b.bind(loop);
        b.movzbl(Op::autoInc(R2), Op::reg(R1));
        b.mtpr(Op::reg(R1), Ipr::TXDB);
        b.sobgtr(Op::reg(R3), loop);
    }
    b.halt();

    // --- CHME: executive-mode record services ---
    // Frame on the executive stack: (SP) = code, +4 PC, +8 PSL.
    b.align(4);
    b.bind(h_chme);
    {
        Label rms_put = b.newLabel();
        Label rms_get = b.newLabel();
        Label rms_fail_put = b.newLabel();
        Label rms_fail_get = b.newLabel();
        Label epilogue = b.newLabel();
        Label unknown = b.newLabel();
        b.movl(Op::deferred(SP), Op::reg(R0));
        b.cmpl(Op::reg(R0), Op::lit(kRmsPut));
        b.beql(rms_put);
        b.cmpl(Op::reg(R0), Op::lit(kRmsGet));
        b.beql(rms_get);
        b.brb(unknown);

        b.bind(rms_put); // R2 = user buffer, R3 = length
        {
            Label len_ok = b.newLabel();
            b.cmpl(Op::reg(R3), Op::imm(256));
            b.blequ(len_ok);
            b.movl(Op::imm(256), Op::reg(R3));
            b.bind(len_ok);
        }
        b.prober(Op::lit(0), Op::reg(R3), Op::deferred(R2));
        b.beql(rms_fail_put);
        b.pushr(Op::imm(0x3C)); // R2..R5 (MOVC3 clobbers R0-R5)
        b.movl(Op::reg(R3), Op::abs(kRmsVa + 4)); // record length
        b.incl(Op::abs(kRmsVa));                  // record count
        b.movc3(Op::reg(R3), Op::deferred(R2), Op::abs(kRmsVa + 16));
        b.popr(Op::imm(0x3C));
        b.clrl(Op::reg(R0));
        b.brb(epilogue);
        b.bind(rms_fail_put);
        b.movl(Op::lit(1), Op::reg(R0));
        b.brb(epilogue);

        b.bind(rms_get); // R2 = user buffer, R3 = max length
        b.movl(Op::abs(kRmsVa + 4), Op::reg(R1));
        {
            Label len_ok = b.newLabel();
            b.cmpl(Op::reg(R1), Op::reg(R3));
            b.blequ(len_ok);
            b.movl(Op::reg(R3), Op::reg(R1));
            b.bind(len_ok);
        }
        b.probew(Op::lit(0), Op::reg(R1), Op::deferred(R2));
        b.beql(rms_fail_get);
        b.pushr(Op::imm(0x3C));
        b.movc3(Op::reg(R1), Op::abs(kRmsVa + 16), Op::deferred(R2));
        b.popr(Op::imm(0x3C));
        b.clrl(Op::reg(R0));
        b.brb(epilogue);
        b.bind(rms_fail_get);
        b.movl(Op::lit(1), Op::reg(R0));
        b.brb(epilogue);

        b.bind(unknown);
        b.mnegl(Op::lit(1), Op::reg(R0));
        b.bind(epilogue);
        b.addl2(Op::lit(4), Op::reg(SP));
        b.rei();
    }

    // --- CHMS: supervisor-mode CLI service ---
    b.align(4);
    b.bind(h_chms);
    b.incl(Op::abs(kCliVa)); // command count (supervisor-write page)
    b.clrl(Op::reg(R0));
    b.addl2(Op::lit(4), Op::reg(SP));
    b.rei();

    // --- Modify fault (bare modified VAX, Section 4.4.2): set PTE<M> ---
    // Frame: (SP) = fault parameter, +4 va, +8 PC, +12 PSL.
    b.align(4);
    b.bind(h_modify);
    b.pushr(Op::imm(0x07)); // R0-R2
    b.movl(Op::disp(16, SP), Op::reg(R0)); // faulting va
    // PTE index bytes: ((va & 0x3FFFFFFF) >> 9) * 4.
    b.bicl3(Op::imm(0xC0000000), Op::reg(R0), Op::reg(R2));
    b.ashl(Op::imm(static_cast<Longword>(-7)), Op::reg(R2),
           Op::reg(R2));
    b.bicl2(Op::lit(3), Op::reg(R2));
    {
        Label is_p0 = b.newLabel();
        Label is_p1 = b.newLabel();
        Label have_base = b.newLabel();
        b.ashl(Op::imm(static_cast<Longword>(-30)), Op::reg(R0),
               Op::reg(R1));
        b.bicl2(Op::imm(0xFFFFFFFC), Op::reg(R1)); // region 0..3
        b.tstl(Op::reg(R1));
        b.beql(is_p0);
        b.cmpl(Op::reg(R1), Op::lit(1));
        b.beql(is_p1);
        // System region: the SPT is at a fixed physical address.
        b.movl(Op::imm(kS + spt), Op::reg(R1));
        b.brb(have_base);
        b.bind(is_p0);
        b.mfpr(Ipr::P0BR, Op::reg(R1));
        b.brb(have_base);
        b.bind(is_p1);
        b.mfpr(Ipr::P1BR, Op::reg(R1));
        b.bind(have_base);
        b.addl2(Op::reg(R1), Op::reg(R2));
    }
    b.bisl2(Op::imm(Pte::kModify), Op::deferred(R2));
    b.mtpr(Op::reg(R0), Ipr::TBIS);
    b.popr(Op::imm(0x07));
    b.addl2(Op::lit(8), Op::reg(SP)); // discard the fault parameters
    b.rei();

    // --- Arithmetic exception: kernel bug -> panic; user -> kill ---
    b.align(4);
    b.bind(h_arith);
    b.addl2(Op::lit(4), Op::reg(SP)); // pop the type code
    // PSL image is now at 4(SP); if the previous mode was kernel this
    // is a kernel bug.
    b.movl(Op::disp(4, SP), Op::reg(R1));
    b.ashl(Op::imm(static_cast<Longword>(-24)), Op::reg(R1),
           Op::reg(R1));
    b.bicl2(Op::imm(0xFFFFFFFC), Op::reg(R1));
    b.tstl(Op::reg(R1));
    beqlFar(h_panic);
    b.brw(exit_common);

    // --- Ignored interrupts (console, virtual disk completion) ---
    b.align(4);
    b.bind(h_ignore);
    b.rei();

    // --- Machine check (vector 0x04, interrupt stack, IPL 31) ---
    // The VMM reflects host-detected ECC events as virtual machine
    // checks with the frame {byte count = 8, code, address} under the
    // PC/PSL pair (fault/fault_plan.h).  MiniVMS logs and continues:
    // an ECC hit in a recoverable spot should not take the system
    // down.
    b.align(4);
    b.bind(h_mcheck);
    b.incl(cell(d_mchecks));
    b.addl2(Op::lit(12), Op::reg(SP)); // byte count + two parameters
    b.rei();

    // --- Panic ---
    b.align(4);
    b.bind(h_panic);
    b.mtpr(Op::imm('!'), Ipr::TXDB);
    b.halt();

    // --- Kernel data cells ---
    b.align(4);
    b.bind(d_isvirt);
    b.longword(0);
    b.bind(d_features);
    b.longword(0); // VMM KCALL feature mask (0 on a bare machine)
    b.bind(d_ring);
    for (int i = 0; i < 4; ++i)
        b.longword(0); // one kDiskBatch descriptor: block/count/pa/flags
    b.bind(d_conbuf);
    b.space(kConsoleChunk); // kConsoleWrite bounce buffer
    b.bind(d_probing);
    b.longword(0);
    b.bind(d_ticks);
    b.longword(0);
    b.bind(d_live);
    b.longword(static_cast<Longword>(nproc));
    b.bind(d_curproc);
    b.longword(0);
    b.bind(d_syscount);
    b.longword(0);
    b.bind(d_retries);
    b.longword(0); // disk ops re-issued after a failed KCALL
    b.bind(d_mchecks);
    b.longword(0); // virtual machine checks survived
    b.bind(d_result);
    b.longword(0);
    b.longword(0);
    b.longword(0);
    b.longword(0);
    b.longword(0);
    b.longword(0);
    const PhysAddr result_pa = b.labelAddress(d_result);
    b.bind(d_pcbs);
    for (const auto &p : procs)
        b.longword(p.pcb);
    b.bind(d_done);
    for (int i = 0; i < nproc; ++i)
        b.longword(0);
    b.bind(done_msg);
    b.ascii("MiniVMS done\r\n");
    b.bind(diskerr_msg);
    b.ascii("?DISK-E-FAIL.\r\n");

    auto kernel = b.finish();
    if (kernel.size() > kKernelTextPages * kPageSize)
        throw std::logic_error("MiniVMS kernel too large");
    const PhysAddr entry_pa = b.labelAddress(entry);

    // ----- Assemble the full image -------------------------------------
    MiniVmsImage out;
    out.image.assign(cursor * kPageSize, 0);
    out.entry = entry_pa;
    out.resultBase = result_pa;
    std::memcpy(out.image.data(), kernel.data(), kernel.size());

    // Workload programs.
    for (const auto &[w, pa] : program_pa) {
        auto prog = buildWorkload(w, cfg);
        std::memcpy(&out.image[pa], prog.data(), prog.size());
    }

    // System page table: identity map of all guest memory.  SREW so
    // the executive- and supervisor-mode service handlers can fetch
    // their own (kernel-resident) code; pre-modified (M=1) so kernel
    // structures never raise modify faults mid-exception.  User pages
    // get M=0 in their process PTEs instead.
    for (Longword i = 0; i < mem_pages; ++i) {
        pokeL(out.image, spt + 4 * i,
              Pte::make(true, Protection::SREW, true, i).raw());
    }
    if (cfg.diskCsrPfn != 0) {
        pokeL(out.image, spt + 4 * mem_pages,
              Pte::make(true, Protection::SREW, true, cfg.diskCsrPfn)
                  .raw());
    }

    // Boot P0 table: identity map of the kernel text pages.
    for (Longword i = 0; i < kKernelTextPages; ++i) {
        pokeL(out.image, boot_p0_table + 4 * i,
              Pte::make(true, Protection::KW, true, i).raw());
    }

    // Per-process page tables and PCBs.
    const VirtAddr kern_stack_top =
        kUserStackTop - kUserStackPages * kPageSize;
    const VirtAddr exec_stack_top =
        kern_stack_top - kKernStackPages * kPageSize;
    const VirtAddr super_stack_top =
        exec_stack_top - kExecStackPages * kPageSize;
    const Longword p1lr = kP1Vpns - kP1StackPages;
    const Longword p1_first_vpn = kP1Vpns - 256;

    for (int i = 0; i < nproc; ++i) {
        const ProcPlan &p = procs[i];

        // P0: user code (read-only to user), data (user write, M=0),
        // RMS area (executive write), CLI area (supervisor write).
        auto p0e = [&](Vpn vpn, Pte pte) {
            pokeL(out.image, p.p0Table + 4 * vpn, pte.raw());
        };
        const Pfn code_pfn = program_pa[proc_work[i]] >> kPageShift;
        for (Longword j = 0; j < kUserCodePages; ++j) {
            p0e((kUserCodeVa >> kPageShift) + j,
                Pte::make(true, Protection::UR, true, code_pfn + j));
        }
        for (Longword j = 0; j < cfg.dataPagesPerProcess; ++j) {
            p0e((kUserDataVa >> kPageShift) + j,
                Pte::make(true, Protection::UW, false,
                          (p.data >> kPageShift) + j));
        }
        for (Longword j = 0; j < kRmsPages; ++j) {
            p0e((kRmsVa >> kPageShift) + j,
                Pte::make(true, Protection::EW, false,
                          (p.rms >> kPageShift) + j));
        }
        for (Longword j = 0; j < kCliPages; ++j) {
            p0e((kCliVa >> kPageShift) + j,
                Pte::make(true, Protection::SW, false,
                          (p.cli >> kPageShift) + j));
        }

        // P1: the four stacks, pre-modified.  Physical pages ascend
        // supervisor, executive, kernel, user.
        auto p1e = [&](Vpn vpn, Pte pte) {
            pokeL(out.image, p.p1Table + 4 * (vpn - p1_first_vpn),
                  pte.raw());
        };
        Pfn stack_pfn = p.stacks >> kPageShift;
        struct StackRun
        {
            Longword pages;
            Protection prot;
        };
        const StackRun runs[] = {
            {kSuperStackPages, Protection::SW},
            {kExecStackPages, Protection::EW},
            {kKernStackPages, Protection::KW},
            {kUserStackPages, Protection::UW},
        };
        Vpn vpn = p1lr;
        for (const StackRun &run : runs) {
            for (Longword j = 0; j < run.pages; ++j) {
                p1e(vpn, Pte::make(true, run.prot, true, stack_pfn));
                ++vpn;
                ++stack_pfn;
            }
        }

        // PCB.
        Psl initial_psl;
        initial_psl.setCurrentMode(AccessMode::User);
        initial_psl.setPreviousMode(AccessMode::User);
        pokeL(out.image, p.pcb + 0, kern_stack_top);  // KSP
        pokeL(out.image, p.pcb + 4, exec_stack_top);  // ESP
        pokeL(out.image, p.pcb + 8, super_stack_top); // SSP
        pokeL(out.image, p.pcb + 12, kUserStackTop);  // USP
        for (int r = 0; r < 12; ++r)
            pokeL(out.image, p.pcb + 16 + 4 * r, 0);
        pokeL(out.image, p.pcb + 64, kUserStackTop);  // AP
        pokeL(out.image, p.pcb + 68, kUserStackTop);  // FP
        pokeL(out.image, p.pcb + 72, kUserCodeVa);    // PC
        pokeL(out.image, p.pcb + 76, initial_psl.raw());
        pokeL(out.image, p.pcb + 80, kS + p.p0Table); // P0BR
        pokeL(out.image, p.pcb + 84,
              p0_ptes | (4u << 24));                  // P0LR | ASTLVL
        pokeL(out.image, p.pcb + 88,
              (kS + p.p1Table) - 4 * p1_first_vpn);   // P1BR (biased)
        pokeL(out.image, p.pcb + 92, p1lr);           // P1LR
    }

    return out;
}

} // namespace vvax
