/**
 * @file
 * MiniUltrix: a Unix-like two-mode guest operating system.
 *
 * The paper notes (Section 4, footnote) that "VMS uses all four VAX
 * access modes, while ULTRIX-32 uses only two; therefore VMS imposes
 * the more stringent requirement."  MiniUltrix is the two-mode
 * counterpart to MiniVMS: kernel and user only, CHMK system calls, a
 * timer-driven round-robin scheduler, per-process P0 spaces - and no
 * executive or supervisor ring usage at all.
 *
 * Like MiniVMS it boots unchanged on a bare standard VAX, a bare
 * modified VAX, and inside a virtual machine.
 */

#ifndef VVAX_GUEST_MINIULTRIX_H
#define VVAX_GUEST_MINIULTRIX_H

#include <vector>

#include "arch/types.h"

namespace vvax {

struct MiniUltrixConfig
{
    Longword memBytes = 512 * 1024;
    int numProcesses = 2;
    Longword iterations = 16;     //!< loop count per process
    Longword quantumCycles = 20000;
    Longword dataPagesPerProcess = 8;
    /**
     * Disk reads each process issues at startup through the
     * kernel-buffer read syscall (retried with backoff on device
     * errors).  0 disables the syscall traffic entirely, and the
     * syscall answers -1 on bare hardware, which has no disk wired to
     * MiniUltrix.
     */
    Longword diskReadsPerProcess = 0;
};

struct MiniUltrixImage
{
    std::vector<Byte> image; //!< load at (VM-)physical 0
    VirtAddr entry = 0;
    /** +0 magic, +4 total syscalls, +8 completed processes,
     *  +12 disk retries, +16 machine checks survived. */
    PhysAddr resultBase = 0;
    static constexpr Longword kResultMagic = 0x0UL + 0x0BADC0DE;
};

MiniUltrixImage buildMiniUltrix(const MiniUltrixConfig &config);

} // namespace vvax

#endif // VVAX_GUEST_MINIULTRIX_H
