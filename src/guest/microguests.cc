#include "guest/microguests.h"

#include "arch/ipr.h"
#include "arch/pte.h"
#include "vasm/code_builder.h"
#include "vmm/kcall.h"

namespace vvax {
namespace {

constexpr VirtAddr kLoadBase = 0x200;

/** Kernel-mode, IPL 31, both mode fields kernel: a legal REI image. */
constexpr Longword kSwitchPsl = 31u << 16;

/** PCB field offsets (see Cpu::execLdpctx). */
constexpr Longword kSptBase = 0x8000;   //!< identity SPT, 128 PTEs
constexpr Longword kCounterAddr = 0x5000;

/**
 * Emit a 96-byte process control block.  Registers start zeroed; the
 * process map is the same identity map both processes run under, so
 * only the stack and resume PC distinguish them.
 */
void
emitPcb(CodeBuilder &b, Longword ksp, Label resume_pc)
{
    b.longword(ksp);            // KSP
    b.longword(0);              // ESP
    b.longword(0);              // SSP
    b.longword(0);              // USP
    for (int i = 0; i < 12; ++i)
        b.longword(0);          // R0-R11
    b.longword(0);              // AP
    b.longword(0);              // FP
    b.longwordAbs(resume_pc);   // PC
    b.longword(kSwitchPsl);     // PSL
    b.longword(kSystemBase + kSptBase);        // P0BR (S va of the SPT)
    b.longword((4u << 24) | 128);              // P0LR + ASTLVL 4
    b.longword(0);              // P1BR
    b.longword(0x200000);       // P1LR (empty P1)
}

/**
 * Identity-map the low 64 KB: build a 128-entry SPT at kSptBase and
 * point P0 at the same table through S space, then enable mapping.
 * (The same trick the shadow-table tests use.)
 */
void
emitIdentityMapOn(CodeBuilder &b)
{
    Label fill = b.newLabel();
    b.movl(Op::imm(kSptBase), Op::reg(R0));
    b.clrl(Op::reg(R1));
    b.bind(fill);
    b.movl(Op::imm(Pte::make(true, Protection::UW, true, 0).raw()),
           Op::reg(R2));
    b.bisl2(Op::reg(R1), Op::reg(R2));
    b.movl(Op::reg(R2), Op::deferred(R0));
    b.addl2(Op::lit(4), Op::reg(R0));
    b.aoblss(Op::imm(128), Op::reg(R1), fill);

    b.mtpr(Op::imm(kSptBase), Ipr::SBR);
    b.mtpr(Op::imm(128), Ipr::SLR);
    b.mtpr(Op::imm(kSystemBase + kSptBase), Ipr::P0BR);
    b.mtpr(Op::imm(128), Ipr::P0LR);
    b.mtpr(Op::imm(0x200000), Ipr::P1LR);
    b.mtpr(Op::lit(1), Ipr::MAPEN);
}

} // namespace

MicroGuestImage
buildTrapDenseLoop(Longword iterations)
{
    CodeBuilder b(kLoadBase);
    b.mtpr(Op::lit(31), Ipr::IPL);
    b.movl(Op::imm(iterations), Op::reg(R0));
    b.clrl(Op::reg(R3));

    Label loop = b.newLabel();
    b.bind(loop);
    b.mtpr(Op::lit(30), Ipr::IPL);
    b.mfpr(Ipr::IPL, Op::reg(R2));
    b.addl2(Op::reg(R2), Op::reg(R3));
    b.prober(Op::lit(3), Op::lit(4), Op::abs(0x1000));
    b.mtpr(Op::lit(31), Ipr::IPL);
    b.sobgtr(Op::reg(R0), loop);
    b.halt();

    MicroGuestImage img;
    img.loadBase = kLoadBase;
    img.entry = kLoadBase;
    img.image = b.finish();
    return img;
}

MicroGuestImage
buildContextSwitchLoop(Longword iterations)
{
    CodeBuilder b(kLoadBase);
    Label loop = b.newLabel();
    Label proc_b = b.newLabel();
    Label done = b.newLabel();
    Label pcb0 = b.newLabel();
    Label pcb1 = b.newLabel();

    emitIdentityMapOn(b);
    b.movl(Op::imm(iterations), Op::abs(kCounterAddr));
    b.movl(Op::imm(0x7000), Op::reg(SP)); // process A's kernel stack
    b.mtpr(Op::lit(31), Ipr::IPL);
    b.mtpr(Op::immLabel(pcb0), Ipr::PCBB);

    // Process A: the scheduler.  The counter lives in memory because
    // LDPCTX replaces the whole register file.
    b.bind(loop);
    b.decl_(Op::abs(kCounterAddr));
    b.bleq(done);
    b.pushl(Op::imm(kSwitchPsl));
    b.pushl(Op::immLabel(loop));
    b.svpctx();
    b.mtpr(Op::immLabel(pcb1), Ipr::PCBB);
    b.ldpctx();
    b.rei();

    // Process B: immediately yields back.
    b.bind(proc_b);
    b.pushl(Op::imm(kSwitchPsl));
    b.pushl(Op::immLabel(proc_b));
    b.svpctx();
    b.mtpr(Op::immLabel(pcb0), Ipr::PCBB);
    b.ldpctx();
    b.rei();

    b.bind(done);
    b.halt();

    b.align(4);
    b.bind(pcb0);
    emitPcb(b, 0x7000, loop);
    b.bind(pcb1);
    emitPcb(b, 0x7800, proc_b);

    MicroGuestImage img;
    img.loadBase = kLoadBase;
    img.entry = kLoadBase;
    img.image = b.finish();
    return img;
}

MicroGuestImage
buildSmcPatchLoop(Longword iterations, bool cross_page)
{
    CodeBuilder b(kLoadBase);
    b.movl(Op::imm(iterations), Op::reg(R6));
    b.movl(Op::imm(1), Op::reg(R2));
    b.clrl(Op::reg(R0));
    b.clrl(Op::reg(R1));

    Label loop = b.newLabel();
    Label patch = b.newLabel();
    b.bind(loop);
    // Toggle r2 between 1 and 2 and store it over the short-literal
    // specifier byte of the ADDL2 below (opcode byte at `patch`, the
    // literal at patch+1), so the patched instruction adds a
    // different addend on every pass.  Both 1 and 2 stay within
    // short-literal range, so the rewritten byte is always legal.
    b.xorl2(Op::lit(3), Op::reg(R2));
    b.movb(Op::reg(R2), Op::absRef(patch, 1));
    if (cross_page) {
        // Put the patched instruction on the following page so the
        // store lands outside the page the storing block runs from.
        // The backward edge needs a word-displacement trampoline:
        // SOBGTR only reaches a byte away.
        Label again = b.newLabel();
        b.brw(patch);
        b.align(kPageSize);
        b.bind(patch);
        b.addl2(Op::lit(1), Op::reg(R0));
        b.xorl2(Op::reg(R0), Op::reg(R1));
        b.sobgtr(Op::reg(R6), again);
        b.halt();
        b.bind(again);
        b.brw(loop);
    } else {
        b.bind(patch);
        b.addl2(Op::lit(1), Op::reg(R0));
        b.xorl2(Op::reg(R0), Op::reg(R1));
        b.sobgtr(Op::reg(R6), loop);
        b.halt();
    }

    MicroGuestImage img;
    img.loadBase = kLoadBase;
    img.entry = kLoadBase;
    img.image = b.finish();
    return img;
}

MicroGuestImage
buildBranchPatchLoop(Longword iterations, bool cross_page)
{
    CodeBuilder b(kLoadBase);
    b.movl(Op::imm(iterations), Op::reg(R6));
    b.clrl(Op::reg(R3)); // patch value: toggles 0 <-> 5
    b.movl(Op::imm(kBranchPatchPeriod), Op::reg(R4));
    b.clrl(Op::reg(R0));
    b.clrl(Op::reg(R1));

    Label loop = b.newLabel();
    Label skip = b.newLabel();
    Label mid = b.newLabel();
    Label door = b.newLabel();
    Label t1 = b.newLabel();
    Label t2 = b.newLabel();
    Label join = b.newLabel();
    b.bind(loop);
    // Rewrite the displacement byte only every kBranchPatchPeriod-th
    // pass: the trace containing the patched BRB needs quiet passes
    // to be rebuilt, linked and crossed before the next patch severs
    // it again - a store every pass would keep the predecode entry
    // for `door` perpetually stale and the branch would simply fall
    // back to per-instruction dispatch, linking nothing.  r3 toggles
    // between 0 and 5: the two legal displacement bytes of the BRB
    // at `door` (t1 is bound immediately after it, t2 exactly five
    // bytes later).
    b.addl2(Op::lit(1), Op::reg(R0));
    b.sobgtr(Op::reg(R4), skip);
    b.xorl2(Op::lit(5), Op::reg(R3));
    b.movb(Op::reg(R3), Op::absRef(door, 1));
    b.movl(Op::imm(kBranchPatchPeriod), Op::reg(R4));
    b.bind(skip);
    if (cross_page) {
        // Put the patched trace on the following page so the store
        // dirties a generation cell the storing block never runs
        // from - the cross-page severing case.
        b.brw(mid);
        b.align(kPageSize);
    } else {
        b.brb(mid);
    }
    b.bind(mid);
    b.addl2(Op::lit(3), Op::reg(R0));
    b.bind(door);
    b.brb(t1); // displacement byte patched between 0 (t1) and 5 (t2)
    b.bind(t1);
    b.addl2(Op::lit(2), Op::reg(R1));
    b.brb(join);
    b.bind(t2);
    b.addl2(Op::lit(5), Op::reg(R1));
    b.bind(join);
    if (cross_page) {
        // SOBGTR only reaches a byte away: trampoline back through a
        // word-displacement branch.
        Label back = b.newLabel();
        b.sobgtr(Op::reg(R6), back);
        b.halt();
        b.bind(back);
        b.brw(loop);
    } else {
        b.sobgtr(Op::reg(R6), loop);
        b.halt();
    }

    MicroGuestImage img;
    img.loadBase = kLoadBase;
    img.entry = kLoadBase;
    img.image = b.finish();
    return img;
}

Longword
branchPatchExpectedR1(Longword iterations)
{
    Longword r1 = 0;
    Longword r3 = 0, r4 = kBranchPatchPeriod;
    Byte disp = 0; // the BRB at `door` assembles with displacement 0
    for (Longword pass = 0; pass < iterations; ++pass) {
        if (--r4 == 0) {
            r3 ^= 5;
            disp = static_cast<Byte>(r3);
            r4 = kBranchPatchPeriod;
        }
        r1 += disp == 0 ? 2u : 5u;
    }
    return r1;
}

MicroGuestImage
buildIoDenseLoop(Longword iterations, bool use_disk_kcall)
{
    // Transfer buffer: one 512-byte run per descriptor, above the code.
    constexpr Longword kIoBuffer = 0x4000;

    CodeBuilder b(kLoadBase);
    Label loop = b.newLabel();
    Label done = b.newLabel();
    Label ring = b.newLabel();

    b.mtpr(Op::lit(31), Ipr::IPL);
    b.clrl(Op::reg(R11));
    if (use_disk_kcall) {
        // Ask the VMM which fast paths it implements.  A VMM without
        // kQueryFeatures answers kError for the unknown function code,
        // which carries no feature bits (kcall.h), so the driver
        // falls back to one KCALL per transfer.
        b.mtpr(Op::lit(kcallabi::kQueryFeatures), Ipr::KCALL);
        b.movl(Op::reg(R0), Op::reg(R11));
    }
    b.movl(Op::imm(iterations), Op::reg(R6));

    b.bind(loop);
    // Console burst: four TXDB writes per iteration.
    b.mtpr(Op::imm('i'), Ipr::TXDB);
    b.mtpr(Op::imm('o'), Ipr::TXDB);
    b.mtpr(Op::imm('.'), Ipr::TXDB);
    b.mtpr(Op::imm('\n'), Ipr::TXDB);
    if (use_disk_kcall) {
        Label unbatched = b.newLabel();
        Label next = b.newLabel();
        b.bbc(Op::lit(1), Op::reg(R11), unbatched);

        // Batched: the whole ring in one exit.
        b.movl(Op::immLabel(ring), Op::reg(R1));
        b.movl(Op::imm(kIoDenseDescriptors), Op::reg(R2));
        b.mtpr(Op::lit(kcallabi::kDiskBatch), Ipr::KCALL);
        b.brb(next);

        // Unbatched: walk the same ring, one KCALL per descriptor.
        Label f_top = b.newLabel();
        Label f_write = b.newLabel();
        Label f_next = b.newLabel();
        b.bind(unbatched);
        b.movl(Op::immLabel(ring), Op::reg(R7));
        b.movl(Op::imm(kIoDenseDescriptors), Op::reg(R8));
        b.bind(f_top);
        b.movl(Op::deferred(R7), Op::reg(R1));  // block
        b.movl(Op::disp(4, R7), Op::reg(R2));   // count
        b.movl(Op::disp(8, R7), Op::reg(R3));   // VM-phys buffer
        b.movl(Op::disp(12, R7), Op::reg(R0));  // flags
        b.blbs(Op::reg(R0), f_write);
        b.mtpr(Op::lit(kcallabi::kDiskRead), Ipr::KCALL);
        b.brb(f_next);
        b.bind(f_write);
        b.mtpr(Op::lit(kcallabi::kDiskWrite), Ipr::KCALL);
        b.bind(f_next);
        b.addl2(Op::imm(kcallabi::kBatchDescriptorBytes),
                Op::reg(R7));
        b.sobgtr(Op::reg(R8), f_top);
        b.bind(next);
    } else {
        // Bare-capable filler so the loop body still computes.
        b.addl2(Op::lit(1), Op::reg(R2));
        b.xorl2(Op::reg(R2), Op::reg(R3));
    }
    b.decl_(Op::reg(R6));
    b.bleq(done);
    b.brw(loop); // the loop body outgrows a byte displacement
    b.bind(done);
    b.halt();

    // The descriptor ring: eight single-block writes out of the
    // buffer, then eight reads of the same blocks back into the upper
    // half of the buffer — identical order batched and unbatched.
    b.align(4);
    b.bind(ring);
    for (Longword i = 0; i < kIoDenseDescriptors; ++i) {
        const bool write = i < kIoDenseDescriptors / 2;
        const Longword block =
            write ? i : i - kIoDenseDescriptors / 2;
        b.longword(block);                 // starting disk block
        b.longword(1);                     // block count
        b.longword(kIoBuffer + i * 512);   // VM-phys buffer run
        b.longword(write ? kcallabi::kBatchFlagWrite : 0);
    }

    MicroGuestImage img;
    img.loadBase = kLoadBase;
    img.entry = kLoadBase;
    img.image = b.finish();
    return img;
}

} // namespace vvax
