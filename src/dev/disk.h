/**
 * @file
 * Block disk with memory-mapped control/status registers.
 *
 * The typical VAX I/O mechanism manipulates device registers in a
 * reserved region of physical address space with ordinary
 * memory-reference instructions (paper Section 4.4.3).  This device
 * models that style: the driver programs BLOCK/COUNT/ADDR and sets GO
 * in the CSR; the transfer DMAs to/from physical memory and completes
 * with an optional interrupt.
 *
 * Register window layout (longwords):
 *   +0  CSR    bit0 GO (write 1 to start), bit6 IE, bit7 READY,
 *              bits 9:8 FUNC (0 = read from disk, 1 = write to disk),
 *              bit15 ERROR
 *   +4  BLOCK  starting block number
 *   +8  COUNT  number of 512-byte blocks
 *   +12 ADDR   physical memory address for the DMA
 */

#ifndef VVAX_DEV_DISK_H
#define VVAX_DEV_DISK_H

#include <vector>

#include "cpu/cpu.h"
#include "memory/physical_memory.h"

namespace vvax {

class FaultPlan;

class DiskDevice : public MmioHandler
{
  public:
    static constexpr Longword kBlockSize = 512;
    static constexpr Longword kCsr = 0;
    static constexpr Longword kBlock = 4;
    static constexpr Longword kCount = 8;
    static constexpr Longword kAddr = 12;
    static constexpr Longword kWindowSize = 16;

    static constexpr Longword kCsrGo = 1u << 0;
    static constexpr Longword kCsrIe = 1u << 6;
    static constexpr Longword kCsrReady = 1u << 7;
    static constexpr Longword kCsrFuncWrite = 1u << 8;
    static constexpr Longword kCsrError = 1u << 15;

    DiskDevice(PhysicalMemory &memory, Longword blocks, Cpu *cpu,
               Word vector);

    Longword mmioRead(PhysAddr offset, int size) override;
    void mmioWrite(PhysAddr offset, Longword value, int size) override;

    /** Host-side access to the backing store (loaders, tests). */
    std::vector<Byte> &
    data()
    {
        ensureStorage();
        return data_;
    }
    Longword blocks() const { return blocks_; }

    /** Performed transfers (for the I/O virtualization benchmarks). */
    std::uint64_t transfersCompleted() const { return transfers_; }

    /** Acknowledge (deassert) a completion interrupt. */
    void acknowledge();

    /** Start a transfer directly (used by the VMM's KCALL service). */
    bool startTransfer(bool write, Longword block, Longword count,
                       PhysAddr addr);

    /**
     * Attach deterministic fault injection (fault/fault_plan.h);
     * injected failures and driver retries are counted in @p stats.
     * Pass nullptr to detach.
     */
    void attachFaults(FaultPlan *plan, Stats *stats);

    /** Transfers failed by fault injection. */
    std::uint64_t transfersFaulted() const { return faulted_; }

  private:
    /** Zero-fill the backing store on first touch: an idle machine
     *  (a golden-image fork held in reserve) never allocates it. */
    void
    ensureStorage()
    {
        if (data_.empty() && blocks_ > 0)
            data_.resize(static_cast<std::size_t>(blocks_) *
                         kBlockSize);
    }

    PhysicalMemory &memory_;
    Longword blocks_;
    std::vector<Byte> data_; //!< sized on first data()/transfer
    Cpu *cpu_;
    Word vector_;

    Longword csr_ = kCsrReady;
    Longword block_ = 0;
    Longword count_ = 0;
    Longword addr_ = 0;
    std::uint64_t transfers_ = 0;

    // Fault injection (bare-machine site; the VMM's vmDiskTransfer
    // has its own).  ops_ is the architectural ordinal decisions key
    // on; lastFailed_ makes a GO after a failed GO count as a retry.
    FaultPlan *faultPlan_ = nullptr;
    Stats *faultStats_ = nullptr;
    std::uint64_t ops_ = 0;
    std::uint64_t faulted_ = 0;
    bool lastFailed_ = false;
};

} // namespace vvax

#endif // VVAX_DEV_DISK_H
