#include "dev/disk.h"

#include <cstring>

#include "fault/fault_plan.h"

namespace vvax {

DiskDevice::DiskDevice(PhysicalMemory &memory, Longword blocks, Cpu *cpu,
                       Word vector)
    : memory_(memory), blocks_(blocks), cpu_(cpu), vector_(vector)
{
}

Longword
DiskDevice::mmioRead(PhysAddr offset, int size)
{
    (void)size;
    switch (offset & ~3u) {
      case kCsr: return csr_;
      case kBlock: return block_;
      case kCount: return count_;
      case kAddr: return addr_;
      default: return 0;
    }
}

void
DiskDevice::mmioWrite(PhysAddr offset, Longword value, int size)
{
    (void)size;
    switch (offset & ~3u) {
      case kCsr: {
        csr_ = (csr_ & (kCsrReady | kCsrError)) |
               (value & (kCsrIe | kCsrFuncWrite));
        if (value & kCsrGo) {
            if (lastFailed_ && faultStats_ != nullptr)
                faultStats_->diskRetries++;
            const bool ok = startTransfer((csr_ & kCsrFuncWrite) != 0,
                                          block_, count_, addr_);
            lastFailed_ = !ok;
            csr_ = (csr_ & (kCsrIe | kCsrFuncWrite)) | kCsrReady |
                   (ok ? 0 : kCsrError);
            if ((csr_ & kCsrIe) && cpu_)
                cpu_->requestInterrupt(kIplDisk, vector_);
        }
        if (!(value & kCsrIe) && cpu_)
            cpu_->clearInterrupt(kIplDisk, vector_);
        break;
      }
      case kBlock: block_ = value; break;
      case kCount: count_ = value; break;
      case kAddr: addr_ = value; break;
      default: break;
    }
}

void
DiskDevice::acknowledge()
{
    if (cpu_)
        cpu_->clearInterrupt(kIplDisk, vector_);
}

void
DiskDevice::attachFaults(FaultPlan *plan, Stats *stats)
{
    faultPlan_ = plan;
    faultStats_ = stats;
}

bool
DiskDevice::startTransfer(bool write, Longword block, Longword count,
                          PhysAddr addr)
{
    if (faultPlan_ != nullptr) {
        const std::uint64_t op = ops_++;
        const bool hard = faultPlan_->diskRangeBad(-1, block, count);
        if (hard || faultPlan_->shouldInject(FaultClass::DiskTransient,
                                             -1, op)) {
            faulted_++;
            if (faultStats_ != nullptr)
                faultStats_->faultsInjected[static_cast<int>(
                    hard ? FaultClass::DiskHard
                         : FaultClass::DiskTransient)]++;
            return false;
        }
    }
    const Longword bytes = count * kBlockSize;
    if (block + count > blocks() || block + count < block)
        return false;
    if (addr + bytes > memory_.ramSize() || addr + bytes < addr)
        return false;
    ensureStorage();
    Byte *disk = data_.data() + block * kBlockSize;
    if (write)
        memory_.readBlock(addr, {disk, bytes});
    else
        memory_.writeBlock(addr, {disk, bytes});
    transfers_++;
    return true;
}

} // namespace vvax
