/**
 * @file
 * Console terminal serviced through the RXCS/RXDB/TXCS/TXDB internal
 * processor registers, as on real VAX processors.  Transmit output is
 * collected into a host-side buffer; receive input is queued by the
 * host (tests, examples) and delivered with optional interrupts.
 */

#ifndef VVAX_DEV_CONSOLE_H
#define VVAX_DEV_CONSOLE_H

#include <deque>
#include <string>

#include "cpu/cpu.h"

namespace vvax {

class ConsoleDevice : public ConsolePort
{
  public:
    explicit ConsoleDevice(Cpu &cpu) : cpu_(&cpu) {}
    /** Detached constructor for VM virtual consoles (no interrupts). */
    ConsoleDevice() = default;

    // ConsolePort
    Longword readIpr(Ipr which) override;
    void writeIpr(Ipr which, Longword value) override;

    /** Everything the guest has transmitted so far. */
    const std::string &output() const { return output_; }
    void clearOutput() { output_.clear(); }

    /** Queue input characters for the guest to receive. */
    void injectInput(std::string_view text);
    bool inputPending() const { return !input_.empty(); }

  private:
    void updateRxInterrupt();

    Cpu *cpu_ = nullptr;
    std::string output_;
    std::deque<Byte> input_;
    bool rx_ie_ = false;
    bool tx_ie_ = false;
};

} // namespace vvax

#endif // VVAX_DEV_CONSOLE_H
