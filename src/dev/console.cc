#include "dev/console.h"

namespace vvax {

Longword
ConsoleDevice::readIpr(Ipr which)
{
    switch (which) {
      case Ipr::RXCS: {
        Longword csr = rx_ie_ ? consolecsr::kInterruptEnable : 0;
        if (!input_.empty())
            csr |= consolecsr::kReady;
        return csr;
      }
      case Ipr::RXDB: {
        if (input_.empty())
            return 0;
        const Byte c = input_.front();
        input_.pop_front();
        updateRxInterrupt();
        return c;
      }
      case Ipr::TXCS: {
        // Transmit completes instantly: always ready.
        Longword csr = consolecsr::kReady;
        if (tx_ie_)
            csr |= consolecsr::kInterruptEnable;
        return csr;
      }
      case Ipr::TXDB:
        return 0;
      default:
        return 0;
    }
}

void
ConsoleDevice::writeIpr(Ipr which, Longword value)
{
    switch (which) {
      case Ipr::RXCS:
        rx_ie_ = (value & consolecsr::kInterruptEnable) != 0;
        updateRxInterrupt();
        break;
      case Ipr::TXCS:
        tx_ie_ = (value & consolecsr::kInterruptEnable) != 0;
        if (cpu_) {
            if (tx_ie_) {
                // Transmitter is always ready, so enabling its
                // interrupt asserts it immediately.
                cpu_->requestInterrupt(
                    kIplConsole,
                    static_cast<Word>(ScbVector::ConsoleTransmit));
            } else {
                cpu_->clearInterrupt(
                    kIplConsole,
                    static_cast<Word>(ScbVector::ConsoleTransmit));
            }
        }
        break;
      case Ipr::TXDB:
        output_.push_back(static_cast<char>(value & 0xFF));
        break;
      default:
        break;
    }
}

void
ConsoleDevice::injectInput(std::string_view text)
{
    for (char c : text)
        input_.push_back(static_cast<Byte>(c));
    updateRxInterrupt();
}

void
ConsoleDevice::updateRxInterrupt()
{
    if (!cpu_)
        return;
    if (rx_ie_ && !input_.empty()) {
        cpu_->requestInterrupt(
            kIplConsole, static_cast<Word>(ScbVector::ConsoleReceive));
    } else {
        cpu_->clearInterrupt(
            kIplConsole, static_cast<Word>(ScbVector::ConsoleReceive));
    }
}

} // namespace vvax
