#include "fault/fault_plan.h"

#include <cstdlib>
#include <stdexcept>

namespace vvax {

namespace {

/** splitmix64 finalizer: the deterministic "randomness" behind prob=
 *  rules and ECC addresses. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t
hashDecision(std::uint64_t seed, FaultClass cls, int vm_id,
             std::uint64_t ordinal)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<Byte>(cls)) << 56) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(vm_id))
         << 40) ^
        ordinal;
    return mix64(mix64(seed) ^ key);
}

} // namespace

std::string_view
faultClassName(FaultClass cls)
{
    switch (cls) {
      case FaultClass::DiskTransient: return "disk-transient";
      case FaultClass::DiskHard: return "disk-hard";
      case FaultClass::TornBatch: return "torn";
      case FaultClass::Ecc: return "ecc";
      case FaultClass::SpuriousInterrupt: return "spurious";
      case FaultClass::AsyncLate: return "async-late";
      case FaultClass::AsyncCorrupt: return "async-corrupt";
      case FaultClass::MailboxDelay: return "mailbox-delay";
      case FaultClass::HostAlloc: return "host-alloc";
      case FaultClass::NumClasses: break;
    }
    return "?";
}

FaultRule &
FaultPlan::addRule(const FaultRule &rule)
{
    rules_.push_back(rule);
    return rules_.back();
}

bool
FaultPlan::ruleFires(FaultRule &rule, int vm_id,
                     std::uint64_t ordinal) const
{
    if (rule.vmId != -1 && rule.vmId != vm_id)
        return false;
    if (rule.fired >= rule.count)
        return false;
    if (rule.prob != 0)
        return hashDecision(seed_, rule.cls, vm_id, ordinal) % 1024 <
               rule.prob;
    if (rule.every != 0)
        return (ordinal + 1) % rule.every == 0;
    return ordinal == rule.at;
}

bool
FaultPlan::shouldInject(FaultClass cls, int vm_id, std::uint64_t ordinal)
{
    for (auto &rule : rules_) {
        if (rule.cls != cls)
            continue;
        if (ruleFires(rule, vm_id, ordinal)) {
            rule.fired++;
            return true;
        }
    }
    return false;
}

bool
FaultPlan::diskRangeBad(int vm_id, Longword block, Longword count)
{
    const std::uint64_t lo = block;
    const std::uint64_t hi = lo + count;
    for (auto &rule : rules_) {
        if (rule.cls != FaultClass::DiskHard)
            continue;
        if (rule.vmId != -1 && rule.vmId != vm_id)
            continue;
        if (rule.fired >= rule.count)
            continue;
        const std::uint64_t bad_lo = rule.block;
        const std::uint64_t bad_hi = bad_lo + rule.nBlocks;
        if (lo < bad_hi && bad_lo < hi) {
            rule.fired++;
            return true;
        }
    }
    return false;
}

Longword
FaultPlan::eccAddress(int vm_id, std::uint64_t ordinal,
                      Longword mem_bytes) const
{
    if (mem_bytes < 4)
        return 0;
    const std::uint64_t h =
        hashDecision(seed_, FaultClass::Ecc, vm_id, ordinal);
    return static_cast<Longword>(h % mem_bytes) & ~Longword{3};
}

std::uint64_t
FaultPlan::delayTicks(FaultClass cls, int vm_id, std::uint64_t ordinal,
                      std::uint64_t max_ticks) const
{
    if (max_ticks == 0)
        return 0;
    // Salt the ordinal so the delay draw never correlates with the
    // fire/no-fire draw of a prob= rule on the same key.
    const std::uint64_t h =
        hashDecision(seed_, cls, vm_id, ordinal ^ 0x5DE1A7ull << 40);
    return 1 + h % max_ticks;
}

namespace {

bool
parseU64(std::string_view text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = value;
    return true;
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                          s.front() == '\n'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                          s.back() == '\n'))
        s.remove_suffix(1);
    return s;
}

bool
classFromName(std::string_view name, FaultClass *out)
{
    for (int i = 0; i < kNumFaultClasses; ++i) {
        const auto cls = static_cast<FaultClass>(i);
        if (name == faultClassName(cls)) {
            *out = cls;
            return true;
        }
    }
    return false;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

} // namespace

bool
FaultPlan::parse(std::string_view spec, FaultPlan *out, std::string *error)
{
    FaultPlan plan;
    std::string_view rest = spec;
    while (!rest.empty()) {
        const auto semi = rest.find(';');
        std::string_view clause = trim(rest.substr(0, semi));
        rest = semi == std::string_view::npos ? std::string_view{}
                                              : rest.substr(semi + 1);
        if (clause.empty())
            continue;

        const auto colon = clause.find(':');
        if (colon == std::string_view::npos) {
            // Plan-level option; only `seed=N` exists.
            const auto eq = clause.find('=');
            std::uint64_t seed = 0;
            if (eq == std::string_view::npos ||
                trim(clause.substr(0, eq)) != "seed" ||
                !parseU64(trim(clause.substr(eq + 1)), &seed))
                return fail(error, "fault plan: bad clause '" +
                                       std::string(clause) + "'");
            plan.setSeed(seed);
            continue;
        }

        FaultRule rule;
        const std::string_view cls_name = trim(clause.substr(0, colon));
        if (!classFromName(cls_name, &rule.cls))
            return fail(error, "fault plan: unknown class '" +
                                   std::string(cls_name) + "'");

        std::string_view keys = clause.substr(colon + 1);
        while (!keys.empty()) {
            const auto comma = keys.find(',');
            const std::string_view kv = trim(keys.substr(0, comma));
            keys = comma == std::string_view::npos ? std::string_view{}
                                                   : keys.substr(comma + 1);
            if (kv.empty())
                continue;
            const auto eq = kv.find('=');
            std::uint64_t value = 0;
            if (eq == std::string_view::npos ||
                !parseU64(trim(kv.substr(eq + 1)), &value))
                return fail(error, "fault plan: bad key '" +
                                       std::string(kv) + "'");
            const std::string_view key = trim(kv.substr(0, eq));
            if (key == "vm")
                rule.vmId = static_cast<int>(value);
            else if (key == "at")
                rule.at = value;
            else if (key == "every")
                rule.every = value;
            else if (key == "prob")
                rule.prob = static_cast<Longword>(value);
            else if (key == "count")
                rule.count = value;
            else if (key == "block")
                rule.block = static_cast<Longword>(value);
            else if (key == "nblocks")
                rule.nBlocks = static_cast<Longword>(value);
            else
                return fail(error, "fault plan: unknown key '" +
                                       std::string(key) + "'");
        }
        plan.addRule(rule);
    }
    if (out != nullptr)
        *out = plan;
    return true;
}

std::unique_ptr<FaultPlan>
FaultPlan::fromEnv()
{
    const char *spec = std::getenv("VVAX_FAULT_PLAN");
    if (spec == nullptr || *spec == '\0')
        return nullptr;
    auto plan = std::make_unique<FaultPlan>();
    std::string error;
    if (!FaultPlan::parse(spec, plan.get(), &error))
        throw std::invalid_argument("VVAX_FAULT_PLAN: " + error);
    return plan;
}

} // namespace vvax
