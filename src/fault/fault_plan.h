/**
 * @file
 * Deterministic, scriptable fault injection.
 *
 * The paper's system is a security kernel (Section 6): a misbehaving
 * VM must not disturb the VMM or its siblings, and sensitive events
 * like machine checks are reflected into the virtual machine rather
 * than taken by the host.  A FaultPlan exercises exactly those error
 * paths: it decides, purely as a function of (seed, fault class,
 * VM id, architectural ordinal), whether a given operation fails.
 *
 * Because every decision keys on an *architectural* ordinal (the
 * per-VM disk-op count, the global timer-tick count, the batch-ring
 * count) and never on host state, the same plan produces bit-identical
 * behaviour on the host fast path and the reference interpreter
 * (VVAX_REFERENCE_PATH=1) — injected faults stay inside the lockstep
 * envelope the equivalence tests check.
 *
 * Injection sites (docs/ARCHITECTURE.md Section 6):
 *  - DiskTransient / DiskHard: Hypervisor::vmDiskTransfer (per-VM
 *    disk-op ordinal) and the bare DiskDevice::startTransfer (device
 *    ordinal, vm_id -1).  A hard fault is a bad block range that
 *    fails every overlapping transfer; a transient fault fails one
 *    attempt and lets the retry through.
 *  - TornBatch: Hypervisor::vmDiskTransferBatch — the tail half of
 *    the ring is never serviced (per-descriptor status stays
 *    kBatchStatusNone; see vmm/kcall.h).
 *  - Ecc: a physical-memory error reported while the VM is resident;
 *    the VMM reflects it through SCB vector 0x04 with a machine-check
 *    frame instead of halting the VM.
 *  - SpuriousInterrupt: an unexpected disk-device interrupt posted to
 *    the resident VM.
 *  - AsyncLate: an async kDiskBatch completion arrives late — the
 *    submit path stretches the batch's dueTick by a deterministic
 *    1..kMaxAsyncLateTicks extra virtual ticks (per-VM batch ordinal).
 *  - AsyncCorrupt: the staging snapshot of an async batch is
 *    corrupted in flight; the VMM detects it, drops the data copies
 *    and posts terminal kBatchStatusError on every serviced
 *    descriptor, so the guest's async retry path runs.
 *  - MailboxDelay: a due cross-thread mailbox entry (console input or
 *    host interrupt) is held back a deterministic 1..kMaxMailboxDelay
 *    extra ticks before delivery (per-VM delivery ordinal) — delivery
 *    still happens at a deterministic virtual tick, so N-worker runs
 *    stay bit-identical to 1-worker runs.
 *  - HostAlloc: a host-resource failure (memfd_create/mmap/F_SEAL_*)
 *    while sealing or forking a golden image, forcing the documented
 *    heap/eager-copy fallback (memory/cow_backing.h).  Architecturally
 *    invisible by design: the fallback is bit-identical.
 *
 * Plans come from the programmatic API (addRule) or from the
 * VVAX_FAULT_PLAN environment variable, a semicolon-separated spec:
 *
 *   VVAX_FAULT_PLAN="seed=7;disk-transient:vm=0,every=3;ecc:every=16;
 *                    torn:vm=0,every=2;spurious:prob=64;
 *                    disk-hard:vm=1,block=96,nblocks=4,count=2;
 *                    async-late:every=5;async-corrupt:every=7;
 *                    mailbox-delay:every=3;host-alloc:at=0"
 *
 * Clause grammar: `class:key=value,key=value,...` with classes
 * disk-transient | disk-hard | torn | ecc | spurious | async-late |
 * async-corrupt | mailbox-delay | host-alloc and keys
 *   vm=N      only this VM id (-1 / absent: any VM, and the bare disk)
 *   at=N      fire at exactly ordinal N
 *   every=N   fire when (ordinal + 1) % N == 0
 *   prob=N    fire with probability N/1024, hashed from the seed
 *   count=N   stop after N firings (default: unlimited)
 *   block=N / nblocks=N   disk-hard only: the bad block range
 */

#ifndef VVAX_FAULT_FAULT_PLAN_H
#define VVAX_FAULT_FAULT_PLAN_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arch/types.h"
#include "metrics/stats.h"

namespace vvax {

/** Classes of injectable faults.  Indexes Stats::faultsInjected. */
enum class FaultClass : Byte {
    DiskTransient = 0, //!< one disk op fails; the retry succeeds
    DiskHard,          //!< a block range fails every overlapping op
    TornBatch,         //!< kDiskBatch ring only partially serviced
    Ecc,               //!< physical-memory error while a VM is resident
    SpuriousInterrupt, //!< unexpected device interrupt into the VM
    AsyncLate,         //!< async batch completion past its dueTick
    AsyncCorrupt,      //!< async staging corrupted; batch fails whole
    MailboxDelay,      //!< cross-thread mailbox entry delivered late
    HostAlloc,         //!< memfd/mmap/seal failure; heap-eager fallback
    NumClasses,
};

static_assert(static_cast<int>(FaultClass::NumClasses) == kNumFaultClasses,
              "Stats::faultsInjected is sized by metrics/stats.h; keep "
              "kNumFaultClasses in sync with FaultClass");

std::string_view faultClassName(FaultClass cls);

/**
 * Machine-check code the VMM reports for an injected ECC event.  The
 * virtual machine-check frame (pushed innermost-last through the VM's
 * SCB vector 0x04, interrupt-style at IPL 31) is:
 *
 *   (SP)    byte count of the parameters below the PC/PSL pair (8)
 *   4(SP)   machine-check code (kMcheckCodeEcc)
 *   8(SP)   faulting physical address
 *   12(SP)  PC of the interrupted instruction
 *   16(SP)  PSL of the interrupted context
 *
 * A guest handler that survives the event pops the 12 parameter
 * bytes and REIs.
 */
constexpr Longword kMcheckCodeEcc = 1;
constexpr Longword kMcheckParamBytes = 8;

/** Bounds on the deterministic delays the late-delivery classes add.
 *  Small on purpose: a delayed completion/delivery must stay well
 *  inside the virtual-time horizon of a quantum so guests' timeout
 *  loops ride it out rather than declare the device dead. */
constexpr std::uint64_t kMaxAsyncLateTicks = 8;
constexpr std::uint64_t kMaxMailboxDelayTicks = 4;

/** One injection rule.  Unset selectors never match (see fault_plan.h
 *  header comment for the spec grammar they mirror). */
struct FaultRule
{
    FaultClass cls = FaultClass::DiskTransient;
    int vmId = -1; //!< -1: any VM, and the bare-machine disk
    std::uint64_t at = ~std::uint64_t{0};    //!< exact ordinal
    std::uint64_t every = 0;                 //!< periodic ordinals
    Longword prob = 0;                       //!< per-1024 hashed chance
    std::uint64_t count = ~std::uint64_t{0}; //!< max firings
    Longword block = 0;   //!< DiskHard: first bad block
    Longword nBlocks = 0; //!< DiskHard: bad range length
    std::uint64_t fired = 0;
};

class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed) {}

    std::uint64_t seed() const { return seed_; }
    void setSeed(std::uint64_t seed) { seed_ = seed; }

    FaultRule &addRule(const FaultRule &rule);
    const std::vector<FaultRule> &rules() const { return rules_; }

    /**
     * Should operation number @p ordinal of class @p cls on VM
     * @p vm_id (-1: bare machine) fail?  Deterministic in
     * (seed, cls, vm_id, ordinal); firing rules consume their budget.
     */
    bool shouldInject(FaultClass cls, int vm_id, std::uint64_t ordinal);

    /** Does a DiskHard rule cover any block of [block, block+count)? */
    bool diskRangeBad(int vm_id, Longword block, Longword count);

    /** Deterministic "failing" physical address for an ECC report. */
    Longword eccAddress(int vm_id, std::uint64_t ordinal,
                        Longword mem_bytes) const;

    /**
     * Deterministic delay in [1, max_ticks] for a late-delivery fault
     * (AsyncLate, MailboxDelay).  Pure in (seed, cls, vm_id, ordinal),
     * like every other decision.
     */
    std::uint64_t delayTicks(FaultClass cls, int vm_id,
                             std::uint64_t ordinal,
                             std::uint64_t max_ticks) const;

    /**
     * Parse a VVAX_FAULT_PLAN-style spec into @p out.  Returns false
     * (with a message in @p error if non-null) on a malformed spec.
     */
    static bool parse(std::string_view spec, FaultPlan *out,
                      std::string *error);

    /**
     * Plan from the VVAX_FAULT_PLAN environment variable, or nullptr
     * when it is unset.  A malformed spec throws std::invalid_argument
     * — a silently ignored fault plan would make a passing fault
     * sweep meaningless.
     */
    static std::unique_ptr<FaultPlan> fromEnv();

  private:
    bool ruleFires(FaultRule &rule, int vm_id, std::uint64_t ordinal) const;

    std::uint64_t seed_ = 0;
    std::vector<FaultRule> rules_;
};

} // namespace vvax

#endif // VVAX_FAULT_FAULT_PLAN_H
